"""The full-system discrete-event simulator.

Replays a :class:`repro.mapreduce.trace.JobTrace` on a
:class:`repro.sim.platform.Platform`:

* **library init** runs serially on the master worker's core;
* the **Map** phase is event-driven: each core pulls from its queue and
  then steals according to the configured policy, with steal decisions
  ordered by simulated completion times -- this is where the paper's
  Eq. (3) cap changes behaviour;
* **Reduce** runs one task per worker after a barrier, each pulling its
  key-value partition slices from every producer core over the NoC;
* **Merge** runs the funnel stages with a barrier per stage, each merge
  task pulling its partner's buffer across the NoC.

Each phase is relaxed to a latency/traffic fixed point: durations are
computed with the current NoC load estimate, the implied flows are
re-registered, latencies refreshed, and the phase re-scheduled.  By
default the loop runs until the phase end time converges
(``SimulationParams.relaxation_rtol`` relative change, bounded by
``max_relaxation_iterations``); setting ``relaxation_rtol=None``
reproduces the legacy fixed-round schedule
(``relaxation_iterations`` rounds plus a final pass) bit-for-bit.
Energy is recorded once, for the committed schedule.

Flow registration is vectorized: per-phase miss traffic enters the NoC
through one mat-vec over precomputed per-node resource rows
(:meth:`repro.sim.memory.MemorySystem.add_miss_flows_batch`) and
key-value streams through one batched
:meth:`repro.noc.network.FlowNetworkModel.add_flows` call; map-task
durations are evaluated as one broadcasted (records x workers) matrix
per relaxation round.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.energy.metrics import EnergyBreakdown
from repro.faults.engine import FaultEngine
from repro.faults.spec import FaultInjectionError
from repro.mapreduce.scheduler import StealingPolicy, TaskQueueSet
from repro.mapreduce.tasks import Phase, Task
from repro.mapreduce.trace import JobTrace, TaskRecord
from repro.noc.packets import kv_stream_bits
from repro.power.governor import CapGovernor
from repro.power.spec import normalize_cap
from repro.sim.config import SimulationParams
from repro.sim.memory import MemorySystem
from repro.sim.platform import Platform
from repro.sim.stats import NetworkStats, PhaseStats, SimulationResult
from repro.telemetry import get_tracer


@dataclass
class _ScheduledTask:
    record: TaskRecord
    worker: int
    start_s: float
    duration_s: float

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s


@dataclass
class _Recovery:
    """Per-phase fault-recovery bookkeeping for the committed schedule.

    ``lost`` holds ``(worker, start_s, duration_s, task_id)`` intervals
    burnt on executions a core failure killed; the time was spent (and is
    charged as busy/dynamic energy) but the work was not."""

    lost: List[Tuple[int, float, float, int]] = field(default_factory=list)
    reexecutions: int = 0
    substitutions: int = 0

    def merge(self, other: "_Recovery") -> None:
        self.lost.extend(other.lost)
        self.reexecutions += other.reexecutions
        self.substitutions += other.substitutions


@dataclass
class _Segment:
    """One closed energy-accounting segment of a segmented run.

    Network counters are captured when the segment closes (at the
    platform switch), not at finalize: a run that revisits a platform
    object -- the cap governor re-raising to the base assignment --
    rebuilds that platform's network, which would otherwise lose the
    earlier segment's accumulated energy."""

    platform: Platform
    elapsed_s: float
    busy_s: np.ndarray
    noc_dynamic_j: float
    noc_static_j: float
    bits_moved: float
    bit_hops: float
    wireless_bits: float


@dataclass
class _KvPlan:
    """Phase-invariant index arrays for a barrier (reduce/merge) phase.

    Everything here depends only on the records -- home workers, task
    costs, and the flattened key-value source list (record row, source
    node, stream bits) -- so it is built once per phase and reused by
    every relaxation round's batched duration evaluation, the flow
    registration, and the committed energy fold.  Only the latency
    tables change between rounds.

    ``kv_*`` arrays are flattened over all records' sources in record
    order (the exact order the scalar path iterates); ``kv_bounds`` is
    the CSR-style record boundary, and ``kv_slot`` each source's
    position within its record (for scattering per-source terms into
    the zero-padded per-record summation rows).
    """

    home: np.ndarray
    nodes: np.ndarray
    instructions: np.ndarray
    l2: np.ndarray
    mem: np.ndarray
    kv_rec: np.ndarray
    kv_src: np.ndarray
    kv_slot: np.ndarray
    kv_bits: np.ndarray
    kv_minbits: np.ndarray
    kv_bounds: np.ndarray
    width: int


class SystemSimulator:
    """Simulates one trace on one platform.

    Parameters
    ----------
    platform:
        Hardware configuration (fresh network state per simulator).
    locality:
        The application's L2-access locality (see
        :class:`repro.sim.memory.MemorySystem`).
    stealing_policy:
        Map-phase stealing policy; ``None`` selects Phoenix++'s default
        greedy stealing.
    params:
        Solver knobs.
    """

    def __init__(
        self,
        platform: Platform,
        locality: float = 0.0,
        stealing_policy: Optional[StealingPolicy] = None,
        params: SimulationParams = SimulationParams(),
    ):
        self.platform = platform
        # Fresh network per simulation so runs never share load/energy state.
        platform.network = platform.build_network()
        # Telemetry: captured once (install a tracer before construction).
        # Simulated-time spans are grouped under the platform name.
        self.tracer = get_tracer()
        platform.network.trace_label = platform.name
        self.memory = MemorySystem(platform, locality)
        self.policy = stealing_policy
        self.params = params
        self._kv_chunk_bits = kv_stream_bits(params.kv_chunk_bytes)
        # Bulk key-value streams use the wire-preferring message class;
        # the memory system already holds the pairwise-energy tables for
        # that class, so share them instead of rebuilding.
        self._bulk_energy = self.memory.pairwise_bulk
        n = platform.num_cores
        self._worker_nodes = np.array(
            [platform.node_of_worker(w) for w in range(n)]
        )
        # Effective = island clock x per-island core perf multiplier; on
        # the homogeneous paper platform this is worker_frequencies().
        self._worker_freqs = np.array(platform.effective_worker_frequencies())
        # Fault injection: an empty plan is normalized to "no plan" so the
        # two are indistinguishable everywhere (results, caches, traces).
        self._locality = locality
        self._base_policy = stealing_policy
        self._base_platform = platform
        plan = params.fault_plan
        if plan is not None and len(plan) == 0:
            plan = None
        self.faults: Optional[FaultEngine] = (
            FaultEngine(platform, plan, params.resilience, tracer=self.tracer)
            if plan is not None
            else None
        )
        # Power capping: the unbounded spec is normalized to "no cap" so
        # uncapped runs construct no governor and keep the legacy path.
        cap = normalize_cap(params.power_cap)
        self.governor: Optional[CapGovernor] = (
            CapGovernor(platform, cap, tracer=self.tracer)
            if cap is not None
            else None
        )
        # The fault engine's current view; the governor's ladder steps
        # stack on top of it.
        self._fault_platform = platform

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #

    def run(self, trace: JobTrace) -> SimulationResult:
        if trace.num_workers != self.platform.num_cores:
            raise ValueError(
                f"trace has {trace.num_workers} workers, platform has "
                f"{self.platform.num_cores} cores"
            )
        busy = np.zeros(self.platform.num_cores)
        self._committed = np.zeros(self.platform.num_cores)
        phases: List[PhaseStats] = []
        now = 0.0
        if self.faults is not None:
            self.faults.begin(trace)
        if self.governor is not None:
            self.governor.begin(trace)
        if self.faults is not None or self.governor is not None:
            # Segmented energy accounting: each platform change (throttle
            # or fabric degradation) closes a :class:`_Segment`,
            # mirroring PhaseAdaptiveSimulator's bookkeeping.
            self._segments: List[_Segment] = []
            self._segment_start = 0.0
            self._busy_snapshot = np.zeros(self.platform.num_cores)
            self._run_busy = busy
        for iteration in trace.iterations:
            self._apply_boundary_controls(now)
            now = self._run_lib_init(iteration.lib_init, now, busy, phases, iteration.iteration)
            self._apply_boundary_controls(now)
            now = self._run_map(
                iteration.map_phase.tasks, now, busy, phases, iteration.iteration
            )
            self._apply_boundary_controls(now)
            now = self._run_reduce(
                iteration.reduce_phase.tasks, now, busy, phases, iteration.iteration
            )
            for stage in iteration.merge_stages:
                self._apply_boundary_controls(now)
                now = self._run_merge_stage(
                    stage.tasks, now, busy, phases, iteration.iteration
                )
        total_time = now
        return self._finalize(trace, total_time, busy, phases)

    def _apply_boundary_controls(self, now: float) -> None:
        """Phase-boundary control hook: activate due fault events, poll
        the cap governor, and refresh the effective platform / frequency
        / policy views.  A no-op (zero float operations) for clean runs.

        Faults run first: the governor's ladder steps stack on top of
        the fault engine's degraded view, never the other way around."""
        faults = self.faults
        governor = self.governor
        if faults is None and governor is None:
            return
        dirty = False
        if faults is not None:
            platform_dirty, freqs_dirty = faults.activate_due(now)
            if platform_dirty:
                fault_platform = faults.effective_platform()
                if fault_platform is not self._fault_platform:
                    self._fault_platform = fault_platform
                    if governor is not None:
                        governor.rebase(fault_platform)
            dirty = platform_dirty or freqs_dirty
        if governor is not None:
            dirty = governor.poll(now, self._run_busy) or dirty
        if not dirty:
            return
        effective = (
            governor.effective_platform()
            if governor is not None
            else self._fault_platform
        )
        if effective is not self.platform:
            self._switch_platform(effective, now)
        self._refresh_speed_views()

    def _switch_platform(self, new_platform: Platform, now: float) -> None:
        """Close the current energy segment and install *new_platform*
        (fresh network state, fresh memory view)."""
        self._close_segment(now)
        self.platform = new_platform
        new_platform.network = new_platform.build_network()
        new_platform.network.trace_label = new_platform.name
        self.memory = MemorySystem(new_platform, self._locality)
        self._bulk_energy = self.memory.pairwise_bulk

    def _close_segment(self, now: float) -> None:
        """Snapshot the outgoing platform's elapsed/busy/network state."""
        elapsed = max(float(now - self._segment_start), 0.0)
        network = self.platform.network
        self._segments.append(
            _Segment(
                platform=self.platform,
                elapsed_s=elapsed,
                busy_s=(self._run_busy - self._busy_snapshot).copy(),
                noc_dynamic_j=network.energy.dynamic_joules,
                noc_static_j=network.static_energy(elapsed),
                bits_moved=network.energy.bits_moved,
                bit_hops=network.energy.bit_hops,
                wireless_bits=network.energy.wireless_bits,
            )
        )
        self._busy_snapshot = self._run_busy.copy()
        self._segment_start = now

    def _refresh_speed_views(self) -> None:
        """Rebuild the frequency map and stealing policy for the current
        effective platform."""
        faults = self.faults
        if faults is not None:
            self._worker_freqs = faults.effective_worker_freqs(self.platform)
            self.policy = faults.effective_policy(
                self._base_policy, self.platform
            )
            return
        from repro.mapreduce.scheduler import CappedStealingPolicy

        freqs = np.array(self.platform.effective_worker_frequencies())
        self._worker_freqs = freqs
        # Mirror FaultEngine.effective_policy: Eq. (3) caps track the
        # throttled frequency map; other policy types pass through.
        if isinstance(self._base_policy, CappedStealingPolicy):
            self.policy = CappedStealingPolicy(
                core_frequencies_hz=[float(f) for f in freqs],
                fmax_hz=float(freqs.max()),
            )
        else:
            self.policy = self._base_policy

    # ------------------------------------------------------------------ #
    # phases
    # ------------------------------------------------------------------ #

    def _run_lib_init(
        self,
        record: TaskRecord,
        start: float,
        busy: np.ndarray,
        phases: List[PhaseStats],
        iteration: int,
    ) -> float:
        self.platform.network.reset_flows()
        self.memory.refresh_latencies()
        if self.faults is None:
            worker = record.home_worker
            duration = self._task_time(record, worker)
            item = _ScheduledTask(record, worker, start, duration)
        else:
            item, recovery = self._execute_with_substitution(
                record, start, kv=False
            )
            self._fold_recovery(recovery, busy)
        busy[item.worker] += item.duration_s
        self._record_task_energy(record, item.worker)
        phases.append(
            PhaseStats(Phase.LIB_INIT, iteration, start, item.end_s)
        )
        if self.tracer.enabled:
            self._trace_phase(phases[-1])
            self._trace_tasks([item], Phase.LIB_INIT)
        return item.end_s

    def _relax_phase(
        self,
        schedule_fn,
        start: float,
        kv: bool,
        legacy_rounds: int,
        plan: Optional[_KvPlan] = None,
    ):
        """Drive one phase to its latency/traffic fixed point.

        ``schedule_fn`` reschedules the phase under the current latency
        estimate and returns a tuple whose first two entries are
        ``(schedule, end)``; the committed result tuple is returned.
        ``plan`` (barrier kv phases, fault-free) lets flow registration
        reuse the phase-invariant index arrays instead of re-walking the
        schedule.

        Adaptive mode (``relaxation_rtol`` set) iterates until the phase
        end time moves by less than ``rtol`` relative to the phase
        duration and commits the converged schedule directly.  Legacy mode
        (``relaxation_rtol=None``) runs exactly ``legacy_rounds``
        register/refresh rounds followed by one final scheduling pass,
        reproducing the historical fixed-round behaviour.
        """
        params = self.params
        rtol = params.relaxation_rtol
        if rtol is None:
            for _ in range(legacy_rounds):
                result = schedule_fn()
                schedule, end = result[0], result[1]
                self._register_phase_flows(
                    schedule, max(end - start, 1e-12), kv=kv, plan=plan
                )
                self.memory.refresh_latencies()
            # Final schedule under converged latencies.
            return schedule_fn()
        residual_mode = params.relaxation_criterion == "worker_residual"
        result = schedule_fn()
        iterations = 1
        residual = 0.0
        prev_busy = self._schedule_busy(result[0]) if residual_mode else None
        for _ in range(params.max_relaxation_iterations):
            schedule, end = result[0], result[1]
            self._register_phase_flows(
                schedule, max(end - start, 1e-12), kv=kv, plan=plan
            )
            self.memory.refresh_latencies()
            result = schedule_fn()
            iterations += 1
            new_end = result[1]
            if residual_mode:
                # Converge on the largest per-worker busy-time movement:
                # load can migrate between workers (steals flip) without
                # moving the makespan at all.
                new_busy = self._schedule_busy(result[0])
                scale = max(new_end - start, 1e-12)
                residual = float(np.max(np.abs(new_busy - prev_busy))) / scale
                prev_busy = new_busy
                if residual <= rtol:
                    break
            else:
                # The residual is reported either way; the break condition
                # is kept as the exact historical comparison.
                residual = abs(new_end - end) / max(new_end - start, 1e-12)
                if abs(new_end - end) <= rtol * max(new_end - start, 1e-12):
                    break
        if self.tracer.enabled:
            pid = self.platform.name
            self.tracer.counter_add(
                "sim.relaxation_iterations", float(iterations), key=pid
            )
            self.tracer.histogram_record(
                "sim.relaxation_iterations", float(iterations)
            )
            self.tracer.sample(
                "sim.relaxation_residual",
                start,
                residual,
                pid=pid,
                tid="relaxation",
            )
        return result

    def _schedule_busy(self, schedule: Sequence[_ScheduledTask]) -> np.ndarray:
        """Per-worker busy seconds of one phase schedule."""
        busy = np.zeros(self.platform.num_cores)
        for item in schedule:
            busy[item.worker] += item.duration_s
        return busy

    def _run_map(
        self,
        records: Sequence[TaskRecord],
        start: float,
        busy: np.ndarray,
        phases: List[PhaseStats],
        iteration: int,
    ) -> float:
        instructions = np.array([r.cost.instructions for r in records])
        l2 = np.array([r.cost.l2_accesses for r in records])
        mem = np.array([r.cost.memory_accesses for r in records])
        # Task wrappers, record-row lookup, and per-worker home rows are
        # invariant across relaxation rounds; build them once per phase
        # instead of once per _schedule_map call.
        tasks = [
            Task(
                task_id=record.task_id,
                phase=Phase.MAP,
                payload=record,
                home_worker=record.home_worker,
            )
            for record in records
        ]
        row_of = {id(record): index for index, record in enumerate(records)}
        num_workers = self.platform.num_cores
        home = np.fromiter(
            (r.home_worker for r in records), dtype=np.int64, count=len(records)
        )
        order = np.argsort(home, kind="stable")
        boundaries = np.searchsorted(home[order], np.arange(num_workers + 1))
        lengths = np.diff(boundaries)
        # (sorted record rows, own-queue lengths, owning worker and
        # queue slot per sorted row): the scatter indices the epoch-
        # batched prologue uses to gather each round's durations.
        dispatch = (
            order,
            lengths,
            np.repeat(np.arange(num_workers), lengths),
            np.arange(len(records)) - np.repeat(boundaries[:-1], lengths),
        )

        def schedule_fn():
            durations = self._map_durations(instructions, l2, mem)
            return self._schedule_map(
                records, start, durations,
                tasks=tasks, row_of=row_of, dispatch=dispatch,
            )

        schedule, end, queues, recovery = self._relax_phase(
            schedule_fn, start, kv=False,
            legacy_rounds=self.params.relaxation_iterations,
        )
        for item in schedule:
            busy[item.worker] += item.duration_s
            self._record_task_energy(item.record, item.worker)
        self._fold_recovery(recovery, busy)
        phases.append(PhaseStats(Phase.MAP, iteration, start, end))
        if self.tracer.enabled:
            # Stealing statistics come from the committed schedule's queue
            # set only, so the counters reflect what actually ran.
            tracer = self.tracer
            pid = self.platform.name
            tracer.counter_add(
                "sched.steal_attempts", queues.steal_attempts, key=pid
            )
            tracer.counter_add("sched.steals", queues.steals, key=pid)
            tracer.counter_add(
                "sched.cap_rejections", queues.cap_rejections, key=pid
            )
            self._trace_phase(phases[-1])
            self._trace_tasks(schedule, Phase.MAP)
            self.platform.network.sample_channel_occupancy(start)
        return end

    def _map_durations(
        self, instructions: np.ndarray, l2: np.ndarray, mem: np.ndarray
    ) -> np.ndarray:
        """(records, workers) task durations under current latencies.

        Broadcasts the exact per-element operation order of
        :meth:`_task_time_parts`, so entries are bit-identical to the
        per-call scalar path."""
        core = self.platform.core_params
        compute = (instructions[:, None] / core.ipc) / self._worker_freqs[None, :]
        round_trip = self.memory.l2_round_trip_all_s()[self._worker_nodes]
        extra = self.memory.memory_extra_all_s()[self._worker_nodes]
        stall = (
            l2[:, None] * round_trip[None, :] + mem[:, None] * extra[None, :]
        ) / core.mlp_overlap
        return compute + stall

    def _schedule_map(
        self,
        records: Sequence[TaskRecord],
        start: float,
        durations: np.ndarray,
        tasks: Optional[List[Task]] = None,
        row_of: Optional[dict] = None,
        dispatch: Optional[Tuple[np.ndarray, ...]] = None,
    ) -> Tuple[List[_ScheduledTask], float, TaskQueueSet, Optional[_Recovery]]:
        """Event-driven map scheduling with stealing.

        ``durations[i, w]`` is the precomputed runtime of ``records[i]``
        on worker ``w`` under the current latency estimate.  Returns the
        queue set as well so the caller can fold its stealing statistics
        for the committed schedule only.

        ``tasks``/``row_of``/``dispatch`` are the phase-invariant
        structures :meth:`_run_map` hoists out of the relaxation loop;
        when ``dispatch`` is present and no faults are armed, the whole
        phase is dispatched in steal-epoch batches
        (:meth:`_dispatch_epochs`) and only the steal *decisions* run
        event by event.

        Under fault injection, an execution that would cross its worker's
        failure instant is killed: the burnt interval is recorded, the
        task returns to the victim's queue head (survivors steal it from
        the tail), and the dead worker never pops again.
        """
        num_workers = self.platform.num_cores
        if tasks is None:
            tasks = [
                Task(
                    task_id=record.task_id,
                    phase=Phase.MAP,
                    payload=record,
                    home_worker=record.home_worker,
                )
                for record in records
            ]
        if row_of is None:
            row_of = {id(record): index for index, record in enumerate(records)}
        policy = self.policy or _fresh_default_policy()
        queues = TaskQueueSet(num_workers, policy)
        queues.load(tasks)
        faults = self.faults
        fail_time = faults.fail_time if faults is not None else None
        recovery = _Recovery() if faults is not None else None
        batched = faults is None and dispatch is not None
        if batched:
            schedule, end = self._dispatch_epochs(
                start, durations, queues, dispatch, row_of
            )
            # The epochs append per-worker batch runs interleaved with
            # boundary pops; the event loop's pop order is (time, worker)
            # lexicographic, so a stable sort restores it exactly (energy
            # accounting folds floats in schedule order, so order is part
            # of the golden contract).
            schedule.sort(key=lambda item: (item.start_s, item.worker))
        else:
            heap = [(start, w) for w in range(num_workers)]
            heapq.heapify(heap)
            schedule = []
            end = start
            while heap and queues.remaining > 0:
                now, worker = heapq.heappop(heap)
                if fail_time is not None and fail_time[worker] <= now:
                    # Dead core: drops out of the event loop for good.
                    continue
                task = queues.next_task(worker)
                if task is None:
                    # Capped out or nothing to steal: this core is done.
                    continue
                record: TaskRecord = task.payload
                duration = float(durations[row_of[id(record)], worker])
                if (
                    fail_time is not None
                    and now + duration > fail_time[worker]
                ):
                    # Killed mid-execution (now < fail strictly, see above).
                    fail = float(fail_time[worker])
                    recovery.lost.append(
                        (worker, now, fail - now, record.task_id)
                    )
                    recovery.reexecutions += 1
                    queues.requeue(worker, task)
                    end = max(end, fail)
                    continue
                schedule.append(_ScheduledTask(record, worker, now, duration))
                end = max(end, now + duration)
                heapq.heappush(heap, (now + duration, worker))
        if queues.remaining > 0:
            # Every worker is capped (possible only with a user-supplied
            # fmax above all cores) or the survivors exited before a killed
            # task was requeued: run leftovers on the fastest core.
            if faults is None:
                fastest = int(np.argmax(self._worker_freqs))
            else:
                alive = np.isinf(fail_time)
                if not alive.any():
                    raise FaultInjectionError(
                        "all workers fail before the map phase drains"
                    )
                masked = np.where(alive, self._worker_freqs, -np.inf)
                fastest = int(np.argmax(masked))
            now = end
            for worker, task in queues.force_drain(fastest):
                record = task.payload
                duration = float(durations[row_of[id(record)], worker])
                schedule.append(_ScheduledTask(record, worker, now, duration))
                now += duration
            end = now
        return schedule, end, queues, recovery

    def _dispatch_epochs(
        self,
        start: float,
        durations: np.ndarray,
        queues: TaskQueueSet,
        dispatch: Tuple[np.ndarray, ...],
        row_of: dict,
    ) -> Tuple[List[_ScheduledTask], float]:
        """Steal-epoch batched map dispatch (fault-free fast path).

        Between steals, every event-loop pop is an own-queue pop that
        stealing cannot perturb: steals only remove victims' *tail*
        tasks, and the earliest time any steal can happen is

            ``t_steal = min`` over alive workers of the own-queue drain
            time (the next event time, for a worker whose queue is
            already empty -- its next pop is a steal attempt).

        So each epoch batch-commits every own-queue pop whose start time
        is strictly below ``t_steal``.  Start times come from one
        ``np.add.accumulate`` over a zero-padded duration matrix of the
        workers still holding own tasks -- a strictly sequential float64
        recurrence per row that reproduces the event loop's
        ``now + duration`` arithmetic bit-for-bit (unlike pairwise
        ``np.sum``; trailing zero pads are exact no-ops).  The event
        loop then handles only the epoch boundary: tie pops at exactly
        ``t_steal`` and the next steal decision.  A successful steal
        (some victim's queue changed) or a retiring worker (capped out /
        nothing to steal -- it never pops again, so the min above loses
        a contributor) ends the boundary and re-enters batching; only
        the steal *decisions* ever run event by event.

        Bookkeeping invariant: a worker's own queue is always the
        contiguous slot run ``[head, head + queue_length)`` of its home
        allocation -- commits and own pops advance the head while steals
        shorten the tail -- so each epoch gathers remaining durations
        with one slice per holder.

        Returns the schedule (batch runs grouped by worker, boundary
        pops in event order; the caller re-sorts into event order) and
        the phase end so far.
        """
        order, lengths, owner, slot = dispatch
        num_workers = self.platform.num_cores
        width = int(lengths.max()) if len(order) else 0
        dur_rows = np.zeros((num_workers, width))
        if len(order):
            dur_rows[owner, slot] = durations[order, owner]
        head = [0] * num_workers
        now_w = [float(start)] * num_workers
        alive = [True] * num_workers
        schedule: List[_ScheduledTask] = []
        end = start
        while queues.remaining > 0:
            # --- batch: commit own-queue runs strictly below t_steal ---
            qlen = queues.own_queue_lengths()
            holders = [w for w in range(num_workers) if alive[w] and qlen[w]]
            waiting = [
                now_w[w] for w in range(num_workers)
                if alive[w] and not qlen[w]
            ]
            t_steal = min(waiting) if waiting else np.inf
            if holders:
                counts = np.array([qlen[w] for w in holders])
                pad = np.zeros((len(holders), int(counts.max()) + 1))
                pad[:, 0] = [now_w[w] for w in holders]
                for i, w in enumerate(holders):
                    pad[i, 1 : 1 + qlen[w]] = dur_rows[
                        w, head[w] : head[w] + qlen[w]
                    ]
                chain = np.add.accumulate(pad, axis=1)
                drains = chain[np.arange(len(holders)), counts]
                t_steal = min(t_steal, float(drains.min()))
                # Padded tail entries repeat the drain time (>= t_steal),
                # so the full-row count equals the count over the
                # worker's real queue run.
                committed = (chain[:, :-1] < t_steal).sum(axis=1)
                for i, w in enumerate(holders):
                    k = int(committed[i])
                    if not k:
                        continue
                    row = chain[i]
                    for j, task in enumerate(queues.commit_own(w, k)):
                        schedule.append(
                            _ScheduledTask(
                                task.payload, w, float(row[j]),
                                float(pad[i, j + 1]),
                            )
                        )
                    head[w] += k
                    now_w[w] = float(row[k])
                    end = max(end, now_w[w])
            # --- boundary: tie pops, then the next steal decision ---
            heap = [(now_w[w], w) for w in range(num_workers) if alive[w]]
            heapq.heapify(heap)
            changed = False
            while heap and queues.remaining > 0:
                now, worker = heapq.heappop(heap)
                own = queues.queue_length(worker) > 0
                task = queues.next_task(worker)
                if task is None:
                    # Capped out or nothing to steal: this core retires,
                    # which can only lift t_steal -- re-batch.
                    alive[worker] = False
                    changed = True
                    break
                record: TaskRecord = task.payload
                duration = float(durations[row_of[id(record)], worker])
                schedule.append(_ScheduledTask(record, worker, now, duration))
                end = max(end, now + duration)
                now_w[worker] = now + duration
                heapq.heappush(heap, (now_w[worker], worker))
                if not own:
                    # Successful steal: the victim's queue shrank, so the
                    # next epoch recomputes t_steal from the survivors.
                    changed = True
                    break
                head[worker] += 1
            if not changed:
                break
        return schedule, end

    def _run_reduce(
        self,
        records: Sequence[TaskRecord],
        start: float,
        busy: np.ndarray,
        phases: List[PhaseStats],
        iteration: int,
    ) -> float:
        plan = self._kv_plan(records) if self.faults is None else None
        schedule, end, recovery = self._relax_phase(
            lambda: self._schedule_parallel(records, start, plan=plan),
            start, kv=True,
            legacy_rounds=self.params.relaxation_iterations,
            plan=plan,
        )
        for item in schedule:
            busy[item.worker] += item.duration_s
        self._record_kv_phase_energy(schedule, plan)
        self._fold_recovery(recovery, busy)
        phases.append(PhaseStats(Phase.REDUCE, iteration, start, end))
        if self.tracer.enabled:
            self._trace_phase(phases[-1])
            self._trace_tasks(schedule, Phase.REDUCE)
            self.platform.network.sample_channel_occupancy(start)
        return end

    def _run_merge_stage(
        self,
        records: Sequence[TaskRecord],
        start: float,
        busy: np.ndarray,
        phases: List[PhaseStats],
        iteration: int,
    ) -> float:
        if not records:
            return start
        plan = self._kv_plan(records) if self.faults is None else None
        schedule, end, recovery = self._relax_phase(
            lambda: self._schedule_parallel(records, start, plan=plan),
            start, kv=True, legacy_rounds=1,
            plan=plan,
        )
        for item in schedule:
            busy[item.worker] += item.duration_s
        self._record_kv_phase_energy(schedule, plan)
        self._fold_recovery(recovery, busy)
        phases.append(PhaseStats(Phase.MERGE, iteration, start, end))
        if self.tracer.enabled:
            self._trace_phase(phases[-1])
            self._trace_tasks(schedule, Phase.MERGE)
            self.platform.network.sample_channel_occupancy(start)
        return end

    def _schedule_parallel(
        self,
        records: Sequence[TaskRecord],
        start: float,
        plan: Optional[_KvPlan] = None,
    ) -> Tuple[List[_ScheduledTask], float, Optional[_Recovery]]:
        """One task per owning worker, all starting at the barrier.

        With a :class:`_KvPlan` (fault-free runs) the whole phase is
        evaluated in one vectorized pass; the scalar per-record loop is
        kept as the reference path and for faulted phases.

        Under fault injection, a task whose home worker is dead (or dies
        mid-execution) runs on a policy-chosen substitute instead."""
        if self.faults is None and plan is not None:
            return self._schedule_parallel_batched(records, start, plan)
        schedule = []
        end = start
        if self.faults is None:
            for record in records:
                worker = record.home_worker
                duration = self._task_time(record, worker) + self._kv_pull_time(
                    record, worker
                )
                schedule.append(_ScheduledTask(record, worker, start, duration))
                end = max(end, start + duration)
            return schedule, end, None
        recovery = _Recovery()
        for record in records:
            item, item_recovery = self._execute_with_substitution(
                record, start, kv=True
            )
            recovery.merge(item_recovery)
            schedule.append(item)
            end = max(end, item.end_s)
        return schedule, end, recovery

    def _kv_plan(self, records: Sequence[TaskRecord]) -> _KvPlan:
        """Build the phase-invariant :class:`_KvPlan` for *records*."""
        count = len(records)
        home = np.fromiter(
            (r.home_worker for r in records), dtype=np.int64, count=count
        )
        instructions = np.array([r.cost.instructions for r in records])
        l2 = np.array([r.cost.l2_accesses for r in records])
        mem = np.array([r.cost.memory_accesses for r in records])
        worker_nodes = self._worker_nodes
        chunk_bytes = self.params.kv_chunk_bytes
        kv_rec: List[int] = []
        kv_src: List[int] = []
        kv_slot: List[int] = []
        kv_bits: List[float] = []
        bounds = np.zeros(count + 1, dtype=np.int64)
        for row, record in enumerate(records):
            for slot, (src_worker, nbytes) in enumerate(
                self._kv_sources(record)
            ):
                kv_rec.append(row)
                kv_src.append(int(worker_nodes[src_worker]))
                kv_slot.append(slot)
                kv_bits.append(kv_stream_bits(nbytes, chunk_bytes))
            bounds[row + 1] = len(kv_rec)
        bits = np.array(kv_bits, dtype=float)
        return _KvPlan(
            home=home,
            nodes=np.asarray(worker_nodes)[home],
            instructions=instructions,
            l2=l2,
            mem=mem,
            kv_rec=np.array(kv_rec, dtype=np.int64),
            kv_src=np.array(kv_src, dtype=np.int64),
            kv_slot=np.array(kv_slot, dtype=np.int64),
            kv_bits=bits,
            kv_minbits=np.minimum(bits, float(self._kv_chunk_bits)),
            kv_bounds=bounds,
            width=int(np.diff(bounds).max()) if count else 0,
        )

    def _schedule_parallel_batched(
        self, records: Sequence[TaskRecord], start: float, plan: _KvPlan
    ) -> Tuple[List[_ScheduledTask], float, None]:
        """Vectorized barrier phase: one pass over the plan's arrays.

        Bit-equal to the scalar loop by construction:

        * compute/stall mirror :meth:`_task_time_parts`'s operation
          order exactly (the same broadcast pattern
          :meth:`_map_durations` pins against the scalar path);
        * each source's head term divides in the latency table's own
          dtype -- ``pyfloat / float32_scalar`` computes in float32
          under NEP 50, so the gathered float32 rates must see float32
          numerators to reproduce the scalar bits;
        * per-record source sums run through one zero-padded
          ``np.add.accumulate`` (sequential float64 recurrence ==
          the scalar ``total += term`` loop; trailing zero pads are
          exact no-ops for the non-negative terms).
        """
        if not len(records):
            return [], start, None
        core = self.platform.core_params
        freqs = self._worker_freqs[plan.home]
        compute = (plan.instructions / core.ipc) / freqs
        round_trip = self.memory.l2_round_trip_all_s()[plan.nodes]
        extra = self.memory.memory_extra_all_s()[plan.nodes]
        stall = (plan.l2 * round_trip + plan.mem * extra) / core.mlp_overlap
        task_time = compute + stall
        if len(plan.kv_rec):
            memory = self.memory
            base = memory.bulk_base_latency_s
            raw = memory.bulk_raw_bottleneck_bps
            effective = memory.bulk_capacity_bps
            dst = plan.nodes[plan.kv_rec]
            raw_g = raw[plan.kv_src, dst]
            cap_g = effective[plan.kv_src, dst]
            minbits = plan.kv_minbits.astype(raw_g.dtype, copy=False)
            with np.errstate(divide="ignore", invalid="ignore"):
                head_ser = np.where(
                    np.isfinite(raw_g), minbits / raw_g, 0.0
                )
                streaming = np.where(
                    np.isfinite(cap_g), plan.kv_bits / cap_g, 0.0
                )
            terms = (base[plan.kv_src, dst] + head_ser) + streaming
            pad = np.zeros((len(records), plan.width))
            pad[plan.kv_rec, plan.kv_slot] = terms
            totals = np.add.accumulate(pad, axis=1)[:, -1]
            durations = task_time + totals
        else:
            durations = task_time + 0.0
        schedule = [
            _ScheduledTask(record, record.home_worker, start, float(durations[i]))
            for i, record in enumerate(records)
        ]
        end = max(start, float((start + durations).max()))
        return schedule, end, None

    def _execute_with_substitution(
        self, record: TaskRecord, start: float, kv: bool
    ) -> Tuple[_ScheduledTask, _Recovery]:
        """Run one barrier-phase task to completion despite core failures.

        The execution chain is deterministic: a dead home worker is
        replaced per the resilience policy's substitute order; an
        execution the worker's failure would cut short burns the interval
        up to the failure (recorded as lost busy time) and re-executes on
        the next substitute.  Each worker dies at most once, so the chain
        terminates; a run with no survivors raises
        :class:`FaultInjectionError`."""
        faults = self.faults
        recovery = _Recovery()
        worker = record.home_worker
        t = start
        while True:
            if faults.fail_time[worker] <= t:
                substitute = faults.substitute_for(
                    worker, t, self._worker_freqs
                )
                if substitute is None:
                    raise FaultInjectionError(
                        f"no surviving worker to run task "
                        f"{record.task_id} at t={t:.6f}s"
                    )
                worker = substitute
                recovery.substitutions += 1
            duration = self._task_time(record, worker)
            if kv:
                duration += self._kv_pull_time(record, worker)
            fail = float(faults.fail_time[worker])
            if t + duration <= fail:
                return _ScheduledTask(record, worker, t, duration), recovery
            recovery.lost.append((worker, t, fail - t, record.task_id))
            recovery.reexecutions += 1
            t = fail
            substitute = faults.substitute_for(worker, t, self._worker_freqs)
            if substitute is None:
                raise FaultInjectionError(
                    f"no surviving worker to re-execute task "
                    f"{record.task_id} at t={t:.6f}s"
                )
            worker = substitute

    def _fold_recovery(
        self, recovery: Optional[_Recovery], busy: np.ndarray
    ) -> None:
        """Charge a committed phase's lost intervals as busy time and fold
        the counts into the fault engine's impact record."""
        if recovery is None or self.faults is None:
            return
        for worker, _start_s, duration_s, _task_id in recovery.lost:
            busy[worker] += duration_s
        self.faults.note_recovery(
            recovery.reexecutions, recovery.substitutions, recovery.lost
        )

    # ------------------------------------------------------------------ #
    # task-level models
    # ------------------------------------------------------------------ #

    def _task_time(self, record: TaskRecord, worker: int) -> float:
        """Compute + memory-stall time of one task on *worker*'s core."""
        compute, stall = self._task_time_parts(record, worker)
        return compute + stall

    def _task_time_parts(
        self, record: TaskRecord, worker: int
    ) -> Tuple[float, float]:
        """(compute, memory stall) seconds of one task on *worker*'s core."""
        platform = self.platform
        node = platform.node_of_worker(worker)
        # The effective frequency map: identical floats to
        # ``platform.frequency_of_worker`` on fault-free runs, degraded by
        # stragglers/throttles under fault injection.
        frequency = float(self._worker_freqs[worker])
        cost = record.cost
        compute = cost.instructions / platform.core_params.ipc / frequency
        stall = self.memory.task_stall_s(
            node,
            cost.l2_accesses,
            cost.memory_accesses,
            platform.core_params.mlp_overlap,
        )
        return compute, stall

    def _kv_sources(self, record: TaskRecord) -> List[Tuple[int, float]]:
        """(source worker, bytes) pairs this task pulls over the NoC."""
        sources: List[Tuple[int, float]] = []
        for src, nbytes in record.input_bytes_by_worker.items():
            if src != record.home_worker and nbytes > 0:
                sources.append((src, nbytes))
        if record.partner_worker is not None and record.cost.kv_bytes_in > 0:
            if record.partner_worker != record.home_worker:
                sources.append((record.partner_worker, record.cost.kv_bytes_in))
        return sources

    def _kv_pull_time(self, record: TaskRecord, worker: int) -> float:
        """Time to stream the task's remote key-value inputs.

        Evaluated from the memory system's refreshed bulk-class matrices
        (zero-payload head latency, raw serialization rate and effective
        path capacity), so each source costs a few table lookups instead
        of two path walks."""
        sources = self._kv_sources(record)
        if not sources:
            return 0.0
        memory = self.memory
        base = memory.bulk_base_latency_s
        raw = memory.bulk_raw_bottleneck_bps
        effective = memory.bulk_capacity_bps
        dst = self._worker_nodes[worker]
        total = 0.0
        for src_worker, nbytes in sources:
            src = self._worker_nodes[src_worker]
            bits = kv_stream_bits(nbytes, self.params.kv_chunk_bytes)
            line_rate = raw[src, dst]
            head = base[src, dst] + (
                min(bits, self._kv_chunk_bits) / line_rate
                if np.isfinite(line_rate)
                else 0.0
            )
            capacity = effective[src, dst]
            streaming = bits / capacity if np.isfinite(capacity) else 0.0
            total += head + streaming
        # Plain float: this feeds schedule timestamps that end up in JSON
        # telemetry exports.
        return float(total)

    # ------------------------------------------------------------------ #
    # telemetry
    # ------------------------------------------------------------------ #

    def _trace_phase(self, stats: PhaseStats) -> None:
        """One span per phase instance on the platform's ``phases`` track."""
        self.tracer.span(
            stats.phase.value,
            stats.start_s,
            stats.duration_s,
            cat="sim.phase",
            pid=self.platform.name,
            tid="phases",
            iteration=stats.iteration,
        )

    def _trace_tasks(
        self, schedule: Sequence[_ScheduledTask], phase: Phase
    ) -> None:
        """Per-task execution spans, one track per worker.

        A task's span covers its busy interval on the core; args split it
        into compute, memory stall and (for kv phases) remote pull time,
        so per-core busy/stall timelines fall out of the trace directly.
        """
        tracer = self.tracer
        pid = self.platform.name
        for item in schedule:
            compute, stall = self._task_time_parts(item.record, item.worker)
            kv_pull = max(item.duration_s - compute - stall, 0.0)
            tracer.span(
                f"{phase.value}:{item.record.task_id}",
                item.start_s,
                item.duration_s,
                cat="sim.task",
                pid=pid,
                tid=item.worker,
                phase=phase.value,
                task_id=item.record.task_id,
                compute_s=compute,
                stall_s=stall,
                kv_pull_s=kv_pull,
            )
            tracer.counter_add("sim.busy_s", item.duration_s, key=f"{pid}/w{item.worker}")
            tracer.counter_add("sim.stall_s", stall, key=f"{pid}/w{item.worker}")

    # ------------------------------------------------------------------ #
    # flows and energy
    # ------------------------------------------------------------------ #

    def _register_phase_flows(
        self,
        schedule: Sequence[_ScheduledTask],
        phase_duration: float,
        kv: bool = False,
        plan: Optional[_KvPlan] = None,
    ) -> None:
        """Convert a phase schedule into sustained flows on the NoC.

        Miss traffic is registered with one batched mat-vec over every
        node's accumulated access rate; key-value streams are registered
        with one batched ``add_flows`` call.  With a :class:`_KvPlan`
        (barrier phases, fault-free -- where the schedule is the record
        list in order) both inputs come straight from the plan's flat
        arrays, in the same accumulation order as the schedule walk.
        """
        network = self.platform.network
        network.reset_flows()
        if plan is not None and self.faults is None:
            accesses_per_node = np.zeros(self.platform.num_cores)
            np.add.at(accesses_per_node, plan.nodes, plan.l2)
            self.memory.add_miss_flows_batch(accesses_per_node / phase_duration)
            if kv:
                network.add_flows(
                    plan.kv_src,
                    plan.nodes[plan.kv_rec],
                    plan.kv_bits / phase_duration,
                    bulk=True,
                )
            return
        accesses_per_node = np.zeros(self.platform.num_cores)
        for item in schedule:
            node = self._worker_nodes[item.worker]
            accesses_per_node[node] += item.record.cost.l2_accesses
        self.memory.add_miss_flows_batch(accesses_per_node / phase_duration)
        if kv:
            srcs: List[int] = []
            dsts: List[int] = []
            rates: List[float] = []
            for item in schedule:
                dst = self._worker_nodes[item.worker]
                for src_worker, nbytes in self._kv_sources(item.record):
                    bits = kv_stream_bits(nbytes, self.params.kv_chunk_bytes)
                    srcs.append(self._worker_nodes[src_worker])
                    dsts.append(dst)
                    rates.append(bits / phase_duration)
            network.add_flows(srcs, dsts, rates, bulk=True)

    def _record_task_energy(
        self, record: TaskRecord, worker: int, kv: bool = False
    ) -> None:
        self._committed[worker] += record.cost.instructions
        node = self.platform.node_of_worker(worker)
        self.memory.record_miss_energy(
            node, record.cost.l2_accesses, record.cost.memory_accesses
        )
        if kv:
            for src_worker, nbytes in self._kv_sources(record):
                src = self.platform.node_of_worker(src_worker)
                bits = kv_stream_bits(nbytes, self.params.kv_chunk_bytes)
                self._bulk_energy.record(src, node, bits)

    def _record_kv_phase_energy(
        self,
        schedule: List[_ScheduledTask],
        plan: Optional[_KvPlan],
    ) -> None:
        """Fold a kv phase's committed work and energy counters.

        With a plan the committed-instruction fold is one ``np.add.at``
        (element order == record order == the scalar loop's accumulation
        order) and the kv source lists / stream-bit computations are
        reused instead of rebuilt per record.  The miss-energy and
        kv-transfer recordings stay *interleaved per record*: both feed
        the same pairwise energy counters, so splitting them into two
        bulk passes would reorder the float accumulation.
        """
        if plan is None:
            for item in schedule:
                self._record_task_energy(item.record, item.worker, kv=True)
            return
        np.add.at(self._committed, plan.home, plan.instructions)
        record_miss = self.memory.record_miss_energy
        record_bulk = self._bulk_energy.record
        bounds = plan.kv_bounds
        for i in range(len(plan.home)):
            node = int(plan.nodes[i])
            record_miss(node, plan.l2[i], plan.mem[i])
            for f in range(bounds[i], bounds[i + 1]):
                record_bulk(int(plan.kv_src[f]), node, float(plan.kv_bits[f]))

    # ------------------------------------------------------------------ #

    def _finalize(
        self,
        trace: JobTrace,
        total_time: float,
        busy: np.ndarray,
        phases: List[PhaseStats],
    ) -> SimulationResult:
        if self.faults is not None or self.governor is not None:
            return self._finalize_segmented(trace, total_time, busy, phases)
        platform = self.platform
        breakdown = EnergyBreakdown()
        for worker in range(platform.num_cores):
            point = platform.vf_of_worker(worker)
            busy_s = float(min(busy[worker], total_time))
            idle_s = max(total_time - busy_s, 0.0)
            power = platform.core_power_of(platform.island_of_worker(worker))
            breakdown.core_dynamic_j += (
                power.dynamic_power_w(point, 1.0) * busy_s
                + power.dynamic_power_w(point, power.params.idle_activity) * idle_s
            )
            breakdown.core_static_j += power.leakage_power_w(point) * total_time
        network = platform.network
        breakdown.noc_dynamic_j = network.energy.dynamic_joules
        breakdown.noc_static_j = network.static_energy(total_time)
        stats = NetworkStats(
            bits_moved=network.energy.bits_moved,
            average_hops=network.energy.average_hops,
            wireless_fraction=network.energy.wireless_fraction,
            dynamic_energy_j=breakdown.noc_dynamic_j,
            static_energy_j=breakdown.noc_static_j,
        )
        return SimulationResult(
            app_name=trace.app_name,
            platform_name=platform.name,
            total_time_s=total_time,
            busy_s=busy,
            committed_instructions=self._committed.copy(),
            worker_frequencies_hz=np.array(platform.effective_worker_frequencies()),
            issue_width=platform.core_params.issue_width,
            phases=phases,
            energy=breakdown,
            network=stats,
        )

    def _finalize_segmented(
        self,
        trace: JobTrace,
        total_time: float,
        busy: np.ndarray,
        phases: List[PhaseStats],
    ) -> SimulationResult:
        """Segmented energy accounting for faulted and/or capped runs.

        Each platform configuration the run passed through (throttles,
        degraded fabrics, governor cap assignments) is one segment
        charged at its own V/F and with its own network's accumulated
        dynamic energy -- the same bookkeeping
        :class:`repro.sim.adaptive.PhaseAdaptiveSimulator` uses for
        per-phase V/F switching.  Lost (killed) intervals were folded
        into ``busy``, so wasted dynamic energy is charged; dead cores
        keep burning idle and leakage power (a functional failure is not
        a power-gated core).  The result reports the *base* platform's
        name and frequencies so downstream normalization compares
        degraded runs against their clean counterparts.
        """
        if self.governor is not None:
            self.governor.finish(total_time)
        self._close_segment(total_time)
        base = self._base_platform
        num_workers = base.num_cores
        breakdown = EnergyBreakdown()
        bits = hops_bits = wireless = dynamic = static = 0.0
        for segment in self._segments:
            platform = segment.platform
            elapsed = segment.elapsed_s
            for worker in range(num_workers):
                power = platform.core_power_of(platform.island_of_worker(worker))
                point = platform.vf_of_worker(worker)
                busy_s = float(min(segment.busy_s[worker], elapsed))
                idle_s = max(elapsed - busy_s, 0.0)
                breakdown.core_dynamic_j += (
                    power.dynamic_power_w(point, 1.0) * busy_s
                    + power.dynamic_power_w(point, power.params.idle_activity)
                    * idle_s
                )
                breakdown.core_static_j += (
                    power.leakage_power_w(point) * elapsed
                )
            dynamic += segment.noc_dynamic_j
            static += segment.noc_static_j
            bits += segment.bits_moved
            hops_bits += segment.bit_hops
            wireless += segment.wireless_bits
        breakdown.noc_dynamic_j = dynamic
        breakdown.noc_static_j = static
        stats = NetworkStats(
            bits_moved=bits,
            average_hops=hops_bits / bits if bits else 0.0,
            wireless_fraction=wireless / bits if bits else 0.0,
            dynamic_energy_j=dynamic,
            static_energy_j=static,
        )
        return SimulationResult(
            app_name=trace.app_name,
            platform_name=base.name,
            total_time_s=total_time,
            busy_s=busy,
            committed_instructions=self._committed.copy(),
            worker_frequencies_hz=np.array(base.effective_worker_frequencies()),
            issue_width=base.core_params.issue_width,
            phases=phases,
            energy=breakdown,
            network=stats,
            faults=self.faults.impact() if self.faults is not None else None,
            power=self.governor.impact() if self.governor is not None else None,
        )


def _fresh_default_policy() -> StealingPolicy:
    from repro.mapreduce.scheduler import DefaultStealingPolicy

    return DefaultStealingPolicy()


def simulate(
    platform: Platform,
    trace: JobTrace,
    locality: float = 0.0,
    stealing_policy: Optional[StealingPolicy] = None,
    params: SimulationParams = SimulationParams(),
) -> SimulationResult:
    """Convenience wrapper: build a simulator and run *trace*."""
    simulator = SystemSimulator(
        platform, locality=locality, stealing_policy=stealing_policy, params=params
    )
    return simulator.run(trace)
