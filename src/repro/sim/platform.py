"""Platform: the complete hardware configuration a trace runs on.

A platform bundles the physical island layout, the per-island V/F
assignment, the interconnect (topology + routing + flow model), the
thread mapping, and the power models.  The four system configurations of
the paper are all platforms:

* **NVFI mesh** -- one nominal V/F everywhere, mesh, identity mapping;
* **VFI 1 mesh** -- QP clustering + initial V/F, mesh;
* **VFI 2 mesh** -- VFI 1 with bottleneck islands raised one step;
* **VFI 2 WiNoC** -- VFI 2 V/F on the small-world + wireless fabric with
  one of the two placement/mapping methodologies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.energy.core_power import CorePowerModel, CorePowerParams
from repro.mapping.thread_mapping import ThreadMapping, identity_mapping
from repro.noc.energy import NocEnergyParams
from repro.noc.network import FlowNetworkModel, NocParams
from repro.noc.routing import RoutingTable, build_routing_table
from repro.noc.topology import LinkKind, Topology
from repro.noc.wireless import WirelessSpec
from repro.sim.config import CoreParams, MemoryParams
from repro.vfi.islands import DVFS_LADDER, VfPoint, VfiLayout


@dataclass
class Platform:
    """One simulatable hardware configuration."""

    name: str
    layout: VfiLayout
    vf_points: Sequence[VfPoint]
    topology: Topology
    routing: RoutingTable
    mapping: Optional[ThreadMapping] = None
    core_params: CoreParams = field(default_factory=CoreParams)
    memory_params: MemoryParams = field(default_factory=MemoryParams)
    noc_params: NocParams = field(default_factory=NocParams)
    wireless_spec: WirelessSpec = field(default_factory=WirelessSpec)
    core_power_params: CorePowerParams = field(default_factory=CorePowerParams)
    noc_energy_params: NocEnergyParams = field(default_factory=NocEnergyParams)
    #: Technology axis (all default to ``None`` = the paper platform;
    #: every accessor then takes the exact legacy code path, which is
    #: what keeps the default configuration bit-for-bit identical).
    #: The node's DVFS ladder (used for throttling / ladder lookups).
    dvfs_ladder: Optional[Tuple[VfPoint, ...]] = None
    #: Per-island core power params (heterogeneous core mixes).
    island_core_power: Optional[Tuple[CorePowerParams, ...]] = None
    #: Per-island core performance multipliers (IPC proxy for in-order
    #: vs out-of-order cores; scales effective worker frequency).
    perf_scales: Optional[Tuple[float, ...]] = None

    def __post_init__(self) -> None:
        if len(self.vf_points) != self.layout.num_clusters:
            raise ValueError(
                f"{len(self.vf_points)} V/F points for "
                f"{self.layout.num_clusters} islands"
            )
        if self.mapping is None:
            self.mapping = identity_mapping(self.num_cores)
        if self.mapping.num_workers != self.num_cores:
            raise ValueError(
                f"mapping covers {self.mapping.num_workers} workers, "
                f"platform has {self.num_cores} cores"
            )
        if self.dvfs_ladder is not None:
            self.dvfs_ladder = tuple(self.dvfs_ladder)
        if self.island_core_power is not None:
            self.island_core_power = tuple(self.island_core_power)
            if len(self.island_core_power) != self.layout.num_clusters:
                raise ValueError(
                    f"{len(self.island_core_power)} island power params "
                    f"for {self.layout.num_clusters} islands"
                )
        if self.perf_scales is not None:
            self.perf_scales = tuple(float(s) for s in self.perf_scales)
            if len(self.perf_scales) != self.layout.num_clusters:
                raise ValueError(
                    f"{len(self.perf_scales)} perf scales for "
                    f"{self.layout.num_clusters} islands"
                )
        self.core_power = CorePowerModel(self.core_power_params)
        if self.island_core_power is None:
            self._island_power_models = None
        else:
            self._island_power_models = tuple(
                CorePowerModel(params) for params in self.island_core_power
            )
        self.network = self.build_network()

    @property
    def num_cores(self) -> int:
        return self.layout.geometry.num_nodes

    def build_network(self) -> FlowNetworkModel:
        """Fresh flow model over this platform's fabric and clocks."""
        if not hasattr(self, "_bulk_routing"):
            self._bulk_routing = self._make_bulk_routing()
        if not hasattr(self, "_noc_static_cache"):
            # Shared across every network rebuilt for this platform: the
            # fabric (and hence paths, usage matrices, path energies)
            # never changes between simulations.
            self._noc_static_cache: dict = {}
        network = FlowNetworkModel(
            topology=self.topology,
            routing=self.routing,
            clusters=list(self.layout.node_cluster),
            cluster_frequencies_hz=[p.frequency_hz for p in self.vf_points],
            cluster_voltages=[p.voltage_v for p in self.vf_points],
            params=self.noc_params,
            wireless=self.wireless_spec,
            energy_params=self.noc_energy_params,
            bulk_routing=self._bulk_routing,
        )
        network.static_cache = self._noc_static_cache
        return network

    def _make_bulk_routing(self) -> RoutingTable:
        """Wire-preferring routing for bulk key-value streams.

        Token-MAC wireless channels are shared 16 Gbps media -- excellent
        latency shortcuts for cache-line packets, poor bandwidth for bulk
        streams -- so bulk transfers route over a heavily
        wireless-penalized metric (message-class routing)."""
        if not self.topology.wireless_links():
            return self.routing

        from repro.noc.routing import default_link_weight

        def bulk_weight(link):
            if link.kind is LinkKind.WIRELESS:
                return 1e4
            return default_link_weight(link)

        return build_routing_table(self.topology, weight=bulk_weight)

    # ------------------------------------------------------------------ #
    # convenience accessors
    # ------------------------------------------------------------------ #

    def node_of_worker(self, worker: int) -> int:
        return self.mapping.node_of(worker)

    def island_of_worker(self, worker: int) -> int:
        return self.layout.cluster_of(self.node_of_worker(worker))

    def vf_of_worker(self, worker: int) -> VfPoint:
        return self.vf_points[self.island_of_worker(worker)]

    def frequency_of_worker(self, worker: int) -> float:
        return self.vf_of_worker(worker).frequency_hz

    def worker_frequencies(self) -> List[float]:
        return [self.frequency_of_worker(w) for w in range(self.num_cores)]

    @property
    def ladder(self) -> Tuple[VfPoint, ...]:
        """This platform's DVFS ladder (the paper's 65 nm one unless a
        technology node supplied its own)."""
        return self.dvfs_ladder if self.dvfs_ladder is not None else DVFS_LADDER

    def core_power_of(self, island: int) -> CorePowerModel:
        """Core power model of *island* (shared model when homogeneous)."""
        if self._island_power_models is None:
            return self.core_power
        return self._island_power_models[island]

    def perf_scale_of_worker(self, worker: int) -> float:
        if self.perf_scales is None:
            return 1.0
        return self.perf_scales[self.island_of_worker(worker)]

    def effective_frequency_of_worker(self, worker: int) -> float:
        """Island clock x core-type performance multiplier (IPC proxy).

        On the homogeneous paper platform this IS the island clock --
        heterogeneous mixes slow in-order islands' task throughput
        without touching the NoC clocks, which stay at ``vf_points``.
        """
        if self.perf_scales is None:
            return self.frequency_of_worker(worker)
        return self.frequency_of_worker(worker) * self.perf_scale_of_worker(worker)

    def effective_worker_frequencies(self) -> List[float]:
        if self.perf_scales is None:
            return self.worker_frequencies()
        return [
            self.effective_frequency_of_worker(w) for w in range(self.num_cores)
        ]

    @property
    def fmax_hz(self) -> float:
        return max(point.frequency_hz for point in self.vf_points)

    def with_vf(self, vf_points: Sequence[VfPoint], name: Optional[str] = None) -> "Platform":
        """Same fabric and mapping, different island V/F assignment."""
        return Platform(
            name=name or self.name,
            layout=self.layout,
            vf_points=list(vf_points),
            topology=self.topology,
            routing=self.routing,
            mapping=self.mapping,
            core_params=self.core_params,
            memory_params=self.memory_params,
            noc_params=self.noc_params,
            wireless_spec=self.wireless_spec,
            core_power_params=self.core_power_params,
            noc_energy_params=self.noc_energy_params,
            dvfs_ladder=self.dvfs_ladder,
            island_core_power=self.island_core_power,
            perf_scales=self.perf_scales,
        )

    def with_power(
        self,
        core_power_params=None,
        noc_energy_params=None,
        name: Optional[str] = None,
    ) -> "Platform":
        """Same platform with different power/energy model constants
        (used by the sensitivity analysis)."""
        return Platform(
            name=name or self.name,
            layout=self.layout,
            vf_points=list(self.vf_points),
            topology=self.topology,
            routing=self.routing,
            mapping=self.mapping,
            core_params=self.core_params,
            memory_params=self.memory_params,
            noc_params=self.noc_params,
            wireless_spec=self.wireless_spec,
            core_power_params=core_power_params or self.core_power_params,
            noc_energy_params=noc_energy_params or self.noc_energy_params,
            dvfs_ladder=self.dvfs_ladder,
            # Overriding the shared power params (sensitivity analysis)
            # supersedes any per-island table.
            island_core_power=(
                None if core_power_params is not None else self.island_core_power
            ),
            perf_scales=self.perf_scales,
        )
