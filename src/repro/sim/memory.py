"""Memory-system model: S-NUCA L2 banks, directory traffic, DRAM.

Every L1 miss becomes NoC traffic (paper Sec. 7: MOESI_CMP_directory with
a 512 KB L2 bank behind every core):

* a control packet from the requesting core to the home L2 bank (plus
  the directory's extra control messages, folded in as a multiplier);
* a data packet (64-byte line) back to the requester;
* on an L2 miss, an additional round trip from the bank to its nearest
  memory controller plus the DRAM access time.

Message classes use different routes (separate request/response virtual
networks, as directory protocols require for deadlock freedom anyway):
small *control* packets take the latency-optimal class, where a wireless
hop is a win; 17-flit *data* responses take the wire-preferring bulk
class, because serializing a cache line through a shared 16 Gbps token
channel would cost more than the hops it saves.

The home-bank distribution is where application *locality* enters: with
probability ``locality`` an access hits the core's own bank (private
data, near-core sharing -- LR's behaviour), otherwise the
address-interleaved uniform S-NUCA distribution applies (WC/Kmeans's
distant key traffic).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.noc.dense import DenseLatencyModel, PairwiseEnergy
from repro.noc.packets import control_bits, data_bits
from repro.sim.platform import Platform
from repro.utils.validation import check_probability


class MemorySystem:
    """Latency/energy/flow accounting for the cache hierarchy."""

    def __init__(self, platform: Platform, locality: float):
        check_probability("locality", locality)
        self.platform = platform
        self.locality = locality
        n = platform.num_cores
        self.num_nodes = n
        # Home-bank probability matrix.  S-NUCA interleaves cache lines by
        # address, so the bulk of the distribution is uniform over all 64
        # banks; a fraction `locality` of accesses instead hits the core's
        # neighborhood (own bank and banks within a few hops, with
        # exponentially decaying weight) -- modeling the share of hits to
        # locally cached/forwarded data, largest for LR ("exchanges large
        # data units with nearer cores").
        geometry = platform.layout.geometry
        nodes = np.arange(n)
        cols = nodes % geometry.columns
        rows = nodes // geometry.columns
        hops = (
            np.abs(cols[:, None] - cols[None, :])
            + np.abs(rows[:, None] - rows[None, :])
        ).astype(float)
        kernel = np.where(hops <= 3, np.exp(-hops / 0.9), 0.0)
        kernel /= kernel.sum(axis=1, keepdims=True)
        self.bank_prob = locality * kernel + (1.0 - locality) / n

        mem = platform.memory_params
        self._ctrl_bits = control_bits() * mem.coherence_control_factor
        self._data_bits = float(data_bits())
        # Nearest controller per bank (static).
        geometry = platform.layout.geometry
        self.controller_of_bank = np.array(
            [
                min(
                    mem.controller_nodes,
                    key=lambda c: (geometry.manhattan_hops(bank, c), c),
                )
                for bank in range(n)
            ]
        )
        self.dense = DenseLatencyModel(platform.network)
        self.dense_bulk = DenseLatencyModel(platform.network, bulk=True)
        self.pairwise = PairwiseEnergy(platform.network)
        self.pairwise_bulk = PairwiseEnergy(platform.network, bulk=True)
        # Bank service time at the bank island's clock (static).
        freqs = np.array(
            [
                platform.vf_points[platform.layout.cluster_of(bank)].frequency_hz
                for bank in range(n)
            ]
        )
        self._bank_service_s = mem.l2_bank_cycles / freqs
        self._l2_round_trip: np.ndarray = np.zeros(n)
        self._mem_extra: np.ndarray = np.zeros(n)
        #: Bulk-class all-pairs matrices for key-value streaming, refreshed
        #: with the miss latencies (see :meth:`refresh_latencies`).
        self.bulk_base_latency_s: np.ndarray = np.zeros((n, n))
        self.bulk_raw_bottleneck_bps: np.ndarray = self.dense_bulk.raw_bottleneck_matrix()
        self.bulk_capacity_bps: np.ndarray = np.full((n, n), np.inf)
        self._precompute_energy_expectations()
        self._precompute_miss_usage()
        self.refresh_latencies()

    # ------------------------------------------------------------------ #
    # latency
    # ------------------------------------------------------------------ #

    def refresh_latencies(self) -> None:
        """Recompute expected miss latencies under the current NoC load.

        Also refreshes the bulk-class matrices the simulator uses for
        key-value pulls: the zero-payload latency matrix (head + queueing,
        i.e. everything but serialization) and the effective per-pair
        path capacity under the current load."""
        l_ctrl = self.dense.latency_matrices([self._ctrl_bits])[self._ctrl_bits]
        bulk = self.dense_bulk.latency_matrices([self._data_bits, 0.0])
        l_data = bulk[self._data_bits]
        self.bulk_base_latency_s = bulk[0.0]
        self.bulk_capacity_bps = self.dense_bulk.bottleneck_matrix()
        n = self.num_nodes
        # Expected L2 round trip per requesting node (request to bank,
        # bank service, response back) and expected extra L2-miss time
        # (bank <-> controller + DRAM), both expectations over the
        # home-bank distribution.  Requester rows are independent, so
        # they evaluate in row blocks (NocParams.dense_block_nodes);
        # the default single block is the exact legacy computation.
        mem = self.platform.memory_params
        mc = self.controller_of_bank
        banks = np.arange(n)
        bank_to_mc = l_ctrl[banks, mc] + l_data[mc, banks]
        extra_per_bank = bank_to_mc + mem.dram_latency_s
        block = self.platform.noc_params.dense_block_nodes or n
        l2_round_trip = np.empty(n)
        mem_extra = np.empty(n)
        for start in range(0, n, block):
            end = min(start + block, n)
            round_trip = (
                l_ctrl[start:end]
                + self._bank_service_s[None, :]
                + l_data.T[start:end]
            )
            prob = self.bank_prob[start:end]
            l2_round_trip[start:end] = (prob * round_trip).sum(axis=1)
            mem_extra[start:end] = (prob * extra_per_bank[None, :]).sum(axis=1)
        self._l2_round_trip = l2_round_trip
        self._mem_extra = mem_extra

    def l2_round_trip_s(self, node: int) -> float:
        """Expected L1-miss service time for a core at *node*."""
        return float(self._l2_round_trip[node])

    def memory_extra_s(self, node: int) -> float:
        """Expected additional time when the access also misses in L2."""
        return float(self._mem_extra[node])

    def l2_round_trip_all_s(self) -> np.ndarray:
        """Per-node expected L1-miss service times (view, do not mutate)."""
        return self._l2_round_trip

    def memory_extra_all_s(self) -> np.ndarray:
        """Per-node expected extra L2-miss times (view, do not mutate)."""
        return self._mem_extra

    def task_stall_s(
        self, node: int, l2_accesses: float, memory_accesses: float, mlp: float
    ) -> float:
        """Total stall time charged to a task, with MLP overlap."""
        if mlp <= 0:
            raise ValueError(f"mlp must be > 0, got {mlp}")
        raw = (
            l2_accesses * self.l2_round_trip_s(node)
            + memory_accesses * self.memory_extra_s(node)
        )
        return raw / mlp

    # ------------------------------------------------------------------ #
    # flows and energy
    # ------------------------------------------------------------------ #

    def _precompute_miss_usage(self) -> None:
        """Per-node resource rows for miss traffic registration.

        Row ``node`` of the resulting (nodes, resources) matrix is the NoC
        resource load (bits/s per directed link / wireless channel)
        produced by one miss access per second issued at ``node``: control
        packets to every home bank over the latency class, data responses
        back over the bulk class, weighted by the home-bank distribution.
        ``add_miss_flows`` is then a single scaled row add instead of
        2 * banks ``add_flow`` path walks."""
        from scipy.sparse import csr_matrix

        network = self.platform.network
        n = self.num_nodes
        usage_ctrl = network._flow_usage(bulk=False)
        usage_data = network._flow_usage(bulk=True)
        num_resources = usage_ctrl.shape[1]
        # Issuer rows are independent, so the rate-matrix products run in
        # row blocks (NocParams.dense_block_nodes) to bound the sparse
        # matmul workspace on large dies; the default single block is the
        # legacy all-rows computation.
        block = self.platform.noc_params.dense_block_nodes or n
        self._miss_usage = np.empty((n, num_resources))
        for start in range(0, n, block):
            end = min(start + block, n)
            nodes = np.repeat(np.arange(start, end), n)
            banks = np.tile(np.arange(n), end - start)
            prob = self.bank_prob[start:end].ravel()
            # (node, node*n + bank) -> ctrl bits/s; (node, bank*n + node)
            # -> data bits/s.  Pair columns follow the flow-usage
            # convention; rows are offset into the block.
            ctrl_rates = csr_matrix(
                (prob * self._ctrl_bits, (nodes - start, nodes * n + banks)),
                shape=(end - start, n * n),
            )
            data_rates = csr_matrix(
                (prob * self._data_bits, (nodes - start, banks * n + nodes)),
                shape=(end - start, n * n),
            )
            self._miss_usage[start:end] = np.asarray(
                (ctrl_rates @ usage_ctrl + data_rates @ usage_data).todense()
            )

    def add_miss_flows(self, node: int, accesses_per_s: float) -> None:
        """Register a core's sustained miss traffic with the flow model."""
        if accesses_per_s < 0:
            raise ValueError(f"accesses_per_s must be >= 0, got {accesses_per_s}")
        if accesses_per_s == 0:
            return
        self.platform.network.apply_resource_load(
            accesses_per_s * self._miss_usage[node]
        )

    def add_miss_flows_batch(self, accesses_per_s: np.ndarray) -> None:
        """Register every core's miss traffic in one mat-vec.

        ``accesses_per_s`` holds one rate per node (zeros allowed);
        equivalent to calling :meth:`add_miss_flows` per node."""
        accesses_per_s = np.asarray(accesses_per_s, dtype=float)
        if accesses_per_s.shape != (self.num_nodes,):
            raise ValueError(
                f"expected {self.num_nodes} per-node rates, "
                f"got shape {accesses_per_s.shape}"
            )
        if (accesses_per_s < 0).any():
            raise ValueError("accesses_per_s must be >= 0")
        if not accesses_per_s.any():
            return
        self.platform.network.apply_resource_load(
            accesses_per_s @ self._miss_usage
        )

    def record_miss_energy(
        self, node: int, l2_accesses: float, memory_accesses: float
    ) -> float:
        """Account NoC energy of a task's miss traffic (expected paths).

        Uses the precomputed expectation over the home-bank distribution,
        so the cost is O(1) per task."""
        if l2_accesses < 0 or memory_accesses < 0:
            raise ValueError("access counts must be >= 0")
        energy = (
            l2_accesses * self._e_l2[node]
            + memory_accesses * self._e_mem[node]
        )
        bits = (
            l2_accesses * (self._ctrl_bits + self._data_bits)
            + memory_accesses * (self._ctrl_bits + self._data_bits)
        )
        bit_hops = (
            l2_accesses * self._h_l2[node] + memory_accesses * self._h_mem[node]
        )
        wireless = (
            l2_accesses * self._w_l2[node] + memory_accesses * self._w_mem[node]
        )
        return self.pairwise.record_aggregate(energy, bits, bit_hops, wireless)

    def _precompute_energy_expectations(self) -> None:
        """Expected per-access energy/hops/wireless-bits per source node.

        Control packets bill against the latency-class paths, data
        responses against the bulk-class paths."""
        pe = self.pairwise
        pb = self.pairwise_bulk
        p = self.bank_prob
        n = self.num_nodes
        ctrl, data = self._ctrl_bits, self._data_bits
        # Memory extra: ctrl bank->controller, data controller->bank.
        mc = self.controller_of_bank
        banks = np.arange(n)
        e_extra = (
            ctrl * pe.energy_per_bit[banks, mc] + data * pb.energy_per_bit[mc, banks]
        )
        h_extra = ctrl * pe.hops[banks, mc] + data * pb.hops[mc, banks]
        w_extra = (
            ctrl * pe.wireless_links[banks, mc]
            + data * pb.wireless_links[mc, banks]
        )
        # L2 round trip: ctrl node->bank (latency class), data bank->node
        # (bulk class).  Requester rows are independent, so the (n, n)
        # expectation products evaluate in row blocks
        # (NocParams.dense_block_nodes); the default single block is the
        # exact legacy computation.
        block = self.platform.noc_params.dense_block_nodes or n
        self._e_l2 = np.empty(n)
        self._h_l2 = np.empty(n)
        self._w_l2 = np.empty(n)
        self._e_mem = np.empty(n)
        self._h_mem = np.empty(n)
        self._w_mem = np.empty(n)
        for start in range(0, n, block):
            end = min(start + block, n)
            rows = slice(start, end)
            prob = p[rows]
            e_round = ctrl * pe.energy_per_bit[rows] + data * pb.energy_per_bit.T[rows]
            h_round = ctrl * pe.hops[rows] + data * pb.hops.T[rows]
            w_round = ctrl * pe.wireless_links[rows] + data * pb.wireless_links.T[rows]
            self._e_l2[rows] = (prob * e_round).sum(axis=1)
            self._h_l2[rows] = (prob * h_round).sum(axis=1)
            self._w_l2[rows] = (prob * w_round).sum(axis=1)
            self._e_mem[rows] = (prob * e_extra[None, :]).sum(axis=1)
            self._h_mem[rows] = (prob * h_extra[None, :]).sum(axis=1)
            self._w_mem[rows] = (prob * w_extra[None, :]).sum(axis=1)
