"""Phase-adaptive VFI: per-execution-stage V/F schedules.

The paper motivates VFIs with the observation that "the execution of
MapReduce on a multicore platform generates varying workload patterns
depending on the execution stages" (Sec. 1) but evaluates only *static*
per-application assignments.  This module implements the natural
extension: switch each island's V/F **per phase**.  The serial phases
(library initialization, the tail of the Merge funnel) leave most
islands idle -- a phase-adaptive schedule drops them to the DVFS floor
and restores them for Map/Reduce, paying a per-transition re-lock
penalty.

Used by ``benchmarks/test_extension_phase_adaptive.py`` as an ablation
beyond the paper's figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.design_flow import VfiDesign
from repro.energy.metrics import EnergyBreakdown
from repro.mapreduce.tasks import Phase
from repro.mapreduce.trace import JobTrace
from repro.sim.config import SimulationParams
from repro.sim.platform import Platform
from repro.sim.stats import NetworkStats, PhaseStats, SimulationResult
from repro.sim.system import SystemSimulator
from repro.mapreduce.scheduler import StealingPolicy
from repro.utils.validation import check_positive
from repro.vfi.islands import DVFS_LADDER, VfPoint


@dataclass(frozen=True)
class VfSchedule:
    """Per-phase island V/F assignment.

    ``points_for`` falls back to the MAP assignment for phases without an
    explicit entry, so a schedule only needs to name the exceptions.
    """

    phase_points: Dict[Phase, Tuple[VfPoint, ...]]
    #: Time to re-lock PLLs / settle voltage on a V/F transition.
    transition_s: float = 10e-6

    def __post_init__(self) -> None:
        if Phase.MAP not in self.phase_points:
            raise ValueError("schedule must define the MAP assignment")
        check_positive("transition_s", self.transition_s, allow_zero=True)

    def points_for(self, phase: Phase) -> Tuple[VfPoint, ...]:
        return self.phase_points.get(phase, self.phase_points[Phase.MAP])

    def distinct_assignments(self) -> List[Tuple[VfPoint, ...]]:
        seen: List[Tuple[VfPoint, ...]] = []
        for phase in Phase:
            points = self.points_for(phase)
            if points not in seen:
                seen.append(points)
        return seen


def phase_adaptive_schedule(
    design: VfiDesign,
    serial_floor: VfPoint = DVFS_LADDER[0],
    master_worker: int = 0,
) -> VfSchedule:
    """Build the canonical phase-adaptive schedule from a VFI design.

    Map and Reduce keep the static VFI-2 assignment; during library init
    and Merge every island except the master's drops to *serial_floor*
    (those cores are idle or nearly so), while the master's island keeps
    its VFI-2 point so the serial critical path is not slowed.
    """
    base = tuple(design.vfi2.points)
    master_island = design.worker_clusters[master_worker]
    serial = tuple(
        point if island == master_island else serial_floor
        for island, point in enumerate(base)
    )
    return VfSchedule(
        phase_points={
            Phase.MAP: base,
            Phase.REDUCE: base,
            Phase.LIB_INIT: serial,
            Phase.MERGE: serial,
        }
    )


class PhaseAdaptiveSimulator:
    """Simulates a trace under a per-phase V/F schedule.

    Internally builds one :class:`SystemSimulator` per distinct island
    assignment (same fabric, mapping and routing -- only clocks and
    voltages differ) and drives the right one for each phase, charging a
    transition penalty whenever consecutive phases use different
    assignments.  Busy time and energy are accounted per assignment, so
    idle islands parked at the floor V/F pay floor-level idle power.
    """

    def __init__(
        self,
        platform: Platform,
        schedule: VfSchedule,
        locality: float = 0.0,
        stealing_policy: Optional[StealingPolicy] = None,
        params: SimulationParams = SimulationParams(),
    ):
        self.schedule = schedule
        self.base_platform = platform
        self._simulators: Dict[Tuple[VfPoint, ...], SystemSimulator] = {}
        for points in schedule.distinct_assignments():
            variant = platform.with_vf(list(points), name=f"{platform.name}@{id(points)}")
            self._simulators[points] = SystemSimulator(
                variant,
                locality=locality,
                stealing_policy=stealing_policy,
                params=params,
            )

    # ------------------------------------------------------------------ #

    def run(self, trace: JobTrace) -> SimulationResult:
        num_workers = self.base_platform.num_cores
        if trace.num_workers != num_workers:
            raise ValueError(
                f"trace has {trace.num_workers} workers, platform has {num_workers}"
            )
        phases: List[PhaseStats] = []
        busy_by_points: Dict[Tuple[VfPoint, ...], np.ndarray] = {
            points: np.zeros(num_workers) for points in self._simulators
        }
        elapsed_by_points: Dict[Tuple[VfPoint, ...], float] = {
            points: 0.0 for points in self._simulators
        }
        for sim in self._simulators.values():
            sim._committed = np.zeros(num_workers)

        now = 0.0
        transitions = 0
        previous_points: Optional[Tuple[VfPoint, ...]] = None

        def enter(phase: Phase) -> Tuple[Tuple[VfPoint, ...], SystemSimulator]:
            nonlocal now, transitions, previous_points
            points = self.schedule.points_for(phase)
            if previous_points is not None and points != previous_points:
                now += self.schedule.transition_s
                transitions += 1
            previous_points = points
            return points, self._simulators[points]

        for iteration in trace.iterations:
            # library init
            points, sim = enter(Phase.LIB_INIT)
            start = now
            now = sim._run_lib_init(
                iteration.lib_init, now, busy_by_points[points], phases,
                iteration.iteration,
            )
            elapsed_by_points[points] += now - start
            # map
            points, sim = enter(Phase.MAP)
            start = now
            now = sim._run_map(
                iteration.map_phase.tasks, now, busy_by_points[points], phases,
                iteration.iteration,
            )
            elapsed_by_points[points] += now - start
            # reduce
            points, sim = enter(Phase.REDUCE)
            start = now
            now = sim._run_reduce(
                iteration.reduce_phase.tasks, now, busy_by_points[points],
                phases, iteration.iteration,
            )
            elapsed_by_points[points] += now - start
            # merge stages
            if iteration.merge_stages:
                points, sim = enter(Phase.MERGE)
                start = now
                for stage in iteration.merge_stages:
                    now = sim._run_merge_stage(
                        stage.tasks, now, busy_by_points[points], phases,
                        iteration.iteration,
                    )
                elapsed_by_points[points] += now - start

        total_time = now
        return self._finalize(
            trace, total_time, phases, busy_by_points, elapsed_by_points
        )

    # ------------------------------------------------------------------ #

    def _finalize(
        self,
        trace: JobTrace,
        total_time: float,
        phases: List[PhaseStats],
        busy_by_points: Dict[Tuple[VfPoint, ...], np.ndarray],
        elapsed_by_points: Dict[Tuple[VfPoint, ...], float],
    ) -> SimulationResult:
        num_workers = self.base_platform.num_cores
        breakdown = EnergyBreakdown()
        total_busy = np.zeros(num_workers)
        committed = np.zeros(num_workers)
        bits = hops_bits = wireless = dynamic = static = 0.0
        for points, sim in self._simulators.items():
            platform = sim.platform
            elapsed = elapsed_by_points[points]
            busy = busy_by_points[points]
            total_busy += busy
            committed += sim._committed
            for worker in range(num_workers):
                power = platform.core_power_of(platform.island_of_worker(worker))
                vf = platform.vf_of_worker(worker)
                busy_s = float(min(busy[worker], elapsed))
                idle_s = max(elapsed - busy_s, 0.0)
                breakdown.core_dynamic_j += (
                    power.dynamic_power_w(vf, 1.0) * busy_s
                    + power.dynamic_power_w(vf, power.params.idle_activity) * idle_s
                )
                breakdown.core_static_j += power.leakage_power_w(vf) * elapsed
            network = platform.network
            dynamic += network.energy.dynamic_joules
            static += network.static_energy(elapsed)
            bits += network.energy.bits_moved
            hops_bits += network.energy.bit_hops
            wireless += network.energy.wireless_bits
        breakdown.noc_dynamic_j = dynamic
        breakdown.noc_static_j = static
        stats = NetworkStats(
            bits_moved=bits,
            average_hops=hops_bits / bits if bits else 0.0,
            wireless_fraction=wireless / bits if bits else 0.0,
            dynamic_energy_j=dynamic,
            static_energy_j=static,
        )
        # Report utilization against the MAP assignment's frequencies (the
        # dominant phase), consistent with the static simulator.
        map_platform = self._simulators[
            self.schedule.points_for(Phase.MAP)
        ].platform
        return SimulationResult(
            app_name=trace.app_name,
            platform_name=f"{self.base_platform.name}+phase-adaptive",
            total_time_s=total_time,
            busy_s=total_busy,
            committed_instructions=committed,
            worker_frequencies_hz=np.array(map_platform.effective_worker_frequencies()),
            issue_width=map_platform.core_params.issue_width,
            phases=phases,
            energy=breakdown,
            network=stats,
        )
