"""Shared utilities: deterministic RNG handling, validation, unit helpers."""

from repro.utils.rng import RngMixin, derive_rng, spawn_seed
from repro.utils.units import (
    GHZ,
    MHZ,
    NS,
    PJ,
    US,
    cycles_to_seconds,
    joules,
    seconds_to_cycles,
)
from repro.utils.validation import (
    check_in_range,
    check_positive,
    check_probability,
    check_type,
)

__all__ = [
    "RngMixin",
    "derive_rng",
    "spawn_seed",
    "GHZ",
    "MHZ",
    "NS",
    "US",
    "PJ",
    "cycles_to_seconds",
    "seconds_to_cycles",
    "joules",
    "check_positive",
    "check_in_range",
    "check_probability",
    "check_type",
]
