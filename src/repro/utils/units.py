"""Unit constants and conversions used across the performance/energy models.

The library works internally in SI units (seconds, joules, hertz) except for
the discrete-event simulator, which advances time in *seconds* as floats.
These helpers keep conversions explicit at module boundaries.
"""

from __future__ import annotations

GHZ = 1e9
MHZ = 1e6
NS = 1e-9
US = 1e-6
PJ = 1e-12
NJ = 1e-9
MW = 1e-3


def cycles_to_seconds(cycles: float, frequency_hz: float) -> float:
    """Convert a cycle count at *frequency_hz* into seconds."""
    if frequency_hz <= 0:
        raise ValueError(f"frequency must be positive, got {frequency_hz}")
    return cycles / frequency_hz


def seconds_to_cycles(seconds: float, frequency_hz: float) -> float:
    """Convert a duration in seconds into cycles at *frequency_hz*."""
    if frequency_hz <= 0:
        raise ValueError(f"frequency must be positive, got {frequency_hz}")
    return seconds * frequency_hz


def joules(power_watts: float, seconds: float) -> float:
    """Energy for holding *power_watts* over *seconds*."""
    return power_watts * seconds
