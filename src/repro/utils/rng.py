"""Deterministic random-number management.

Every stochastic component in the library (dataset generators, simulated
annealing, small-world wiring) receives an explicit seed or an explicit
``numpy.random.Generator``.  Nothing reads global random state, so any
experiment is reproducible from its top-level seed alone.
"""

from __future__ import annotations

import hashlib
from typing import Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]

_DEFAULT_SEED = 0xD5C2015  # stable library-wide default (DAC 2015)


def derive_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` for *seed*.

    Accepts an ``int`` seed, an existing generator (returned unchanged), or
    ``None`` (library default seed, so results are stable run-to-run).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = _DEFAULT_SEED
    return np.random.default_rng(int(seed))


def spawn_seed(seed: int, *labels: str) -> int:
    """Derive a child seed from *seed* and a sequence of string *labels*.

    Uses a cryptographic hash so sibling components (e.g. per-benchmark
    dataset generators) get decorrelated streams while remaining fully
    deterministic.
    """
    digest = hashlib.sha256()
    digest.update(str(int(seed)).encode("utf-8"))
    for label in labels:
        digest.update(b"/")
        digest.update(label.encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "little")


class RngMixin:
    """Mixin giving a class a lazily created private generator.

    Subclasses set ``self._seed`` (int or ``None``) in ``__init__`` and use
    ``self.rng`` everywhere.
    """

    _seed: Optional[int] = None
    _rng: Optional[np.random.Generator] = None

    @property
    def rng(self) -> np.random.Generator:
        if self._rng is None:
            self._rng = derive_rng(self._seed)
        return self._rng

    def reseed(self, seed: SeedLike) -> None:
        """Reset the private generator (used by tests to replay runs)."""
        self._rng = derive_rng(seed)
