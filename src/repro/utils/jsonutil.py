"""Canonical JSON: builtin-only payloads with a stable byte encoding.

Every persisted artifact that participates in hashing or byte-identical
replay (cluster arrival traces, run records, orchestrator manifests)
funnels through :func:`canonical_json`: keys sorted, no whitespace,
``NaN``/``Infinity`` rejected, and every value a builtin type.  numpy
scalars and arrays are converted by :func:`to_builtin` before encoding --
``json.dumps`` serializes ``np.float64`` on some platforms and raises on
others, and even where it works the repr can differ from the builtin
float's, which would silently split cache keys.
"""

from __future__ import annotations

import json
from typing import Any

import numpy as np


def to_builtin(value: Any) -> Any:
    """Recursively convert *value* to JSON-native builtin types.

    numpy scalars become their Python equivalents (``np.float64`` ->
    ``float``, ``np.int64``/``np.bool_`` -> ``int``/``bool``), numpy
    arrays become (nested) lists, tuples become lists, and dict keys are
    stringified the way ``json.dumps`` would.  Anything else is returned
    unchanged -- the encoder raises on genuinely non-serializable values,
    which is the correct failure mode for a schema bug.
    """
    if isinstance(value, dict):
        return {_builtin_key(k): to_builtin(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [to_builtin(v) for v in value]
    if isinstance(value, np.ndarray):
        return to_builtin(value.tolist())
    if isinstance(value, np.generic):
        return value.item()
    return value


def _builtin_key(key: Any) -> Any:
    if isinstance(key, np.generic):
        key = key.item()
    if isinstance(key, (int, float)) and not isinstance(key, bool):
        return str(key)
    return key


def canonical_json(value: Any) -> str:
    """Encode *value* as canonical JSON text.

    Sorted keys, compact separators, no NaN/Infinity, builtins only (via
    :func:`to_builtin`).  The same logical document always produces the
    same bytes, so sha256 over the text is a stable content address and
    two replays can be compared with ``==``.
    """
    return json.dumps(
        to_builtin(value),
        sort_keys=True,
        separators=(",", ":"),
        allow_nan=False,
    )
