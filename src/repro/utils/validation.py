"""Small argument-validation helpers.

These raise early with precise messages instead of letting bad configuration
propagate into the simulators, where failures would be far harder to trace.
"""

from __future__ import annotations

from typing import Any, Tuple, Type, Union


def check_positive(name: str, value: float, *, allow_zero: bool = False) -> float:
    """Validate that *value* is positive (or non-negative with *allow_zero*)."""
    if allow_zero:
        if value < 0:
            raise ValueError(f"{name} must be >= 0, got {value!r}")
    elif value <= 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_in_range(
    name: str,
    value: float,
    lo: float,
    hi: float,
    *,
    inclusive: bool = True,
) -> float:
    """Validate that *value* lies in [lo, hi] (or (lo, hi) if not inclusive)."""
    if inclusive:
        ok = lo <= value <= hi
    else:
        ok = lo < value < hi
    if not ok:
        bounds = f"[{lo}, {hi}]" if inclusive else f"({lo}, {hi})"
        raise ValueError(f"{name} must be in {bounds}, got {value!r}")
    return value


def check_probability(name: str, value: float) -> float:
    """Validate that *value* is a probability in [0, 1]."""
    return check_in_range(name, value, 0.0, 1.0)


def check_type(
    name: str,
    value: Any,
    expected: Union[Type, Tuple[Type, ...]],
) -> Any:
    """Validate that *value* is an instance of *expected*."""
    if not isinstance(value, expected):
        raise TypeError(
            f"{name} must be {expected!r}, got {type(value).__name__}: {value!r}"
        )
    return value
