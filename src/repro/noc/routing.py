"""Routing: dimension-ordered XY for the mesh, weighted shortest-path
tables for irregular (small-world / wireless) topologies.

Both wireline and wireless links use wormhole switching (paper Sec. 7);
routing is deterministic, so each (source, destination) pair maps to one
fixed path -- which is what lets the flow model attribute traffic to
links exactly.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import dijkstra

from repro.noc.topology import GridGeometry, Link, LinkKind, Topology


def xy_route(geometry: GridGeometry, src: int, dst: int) -> List[int]:
    """Dimension-ordered (X then Y) mesh route, inclusive of endpoints."""
    sx, sy = geometry.coordinates(src)
    dx, dy = geometry.coordinates(dst)
    path = [src]
    x, y = sx, sy
    step = 1 if dx > x else -1
    while x != dx:
        x += step
        path.append(geometry.node_at(x, y))
    step = 1 if dy > y else -1
    while y != dy:
        y += step
        path.append(geometry.node_at(x, y))
    return path


class RoutingTable:
    """All-pairs deterministic paths over a topology.

    Paths are materialized lazily from a Dijkstra predecessor matrix and
    cached; ``path(src, dst)`` returns the node sequence inclusive of both
    endpoints (``[src]`` when ``src == dst``).
    """

    def __init__(self, topology: Topology, predecessors: np.ndarray):
        self.topology = topology
        self._predecessors = predecessors
        self._cache: Dict[Tuple[int, int], Tuple[int, ...]] = {}
        self._hop_matrix: Optional[np.ndarray] = None

    def path(self, src: int, dst: int) -> Tuple[int, ...]:
        if src == dst:
            return (src,)
        key = (src, dst)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        nodes = [dst]
        node = dst
        while node != src:
            node = int(self._predecessors[src, node])
            if node < 0:
                raise RuntimeError(f"no route from {src} to {dst}")
            nodes.append(node)
        nodes.reverse()
        path = tuple(nodes)
        self._cache[key] = path
        return path

    def links_on_path(self, src: int, dst: int) -> List[Link]:
        path = self.path(src, dst)
        return [
            self.topology.find_link(a, b) for a, b in zip(path, path[1:])
        ]

    def hop_count(self, src: int, dst: int) -> int:
        return len(self.path(src, dst)) - 1

    def predecessor_matrix(self) -> np.ndarray:
        """All-pairs predecessor table: ``pred[src, dst]`` is the node
        before *dst* on the deterministic route from *src* (negative on
        the diagonal).  This is what the blocked dense-table builders walk
        in vectorized lockstep instead of materializing per-pair paths.
        """
        if self._predecessors.size == 0:
            raise NotImplementedError(
                "this routing table does not expose a predecessor matrix"
            )
        return self._predecessors

    def hop_matrix(self) -> np.ndarray:
        """All-pairs hop counts along the table's deterministic routes.

        Computed once and cached (routes never change after construction):
        each source row walks every destination's predecessor chain in
        lockstep, so the cost is O(n * diameter) vectorized steps instead
        of O(n^2) Python path walks per call.
        """
        if self._hop_matrix is None:
            self._hop_matrix = self._build_hop_matrix()
        return self._hop_matrix

    def _build_hop_matrix(self) -> np.ndarray:
        n = self.topology.num_nodes
        hops = np.zeros((n, n), dtype=int)
        if self._predecessors.size == 0:
            # Geometry-routed subclasses materialize paths lazily; fall
            # back to walking them (still cached across calls).
            for src in range(n):
                for dst in range(n):
                    if src != dst:
                        hops[src, dst] = self.hop_count(src, dst)
            return hops
        destinations = np.arange(n)
        for src in range(n):
            predecessors = self._predecessors[src]
            current = destinations.copy()
            alive = current != src
            steps = np.zeros(n, dtype=int)
            while alive.any():
                steps[alive] += 1
                current = np.where(alive, predecessors[current], current)
                if (current[alive] < 0).any():
                    broken = destinations[alive & (current < 0)]
                    raise RuntimeError(
                        f"no route from {src} to {broken.tolist()}"
                    )
                alive = current != src
            hops[src] = steps
        return hops


#: Grid pitch used to normalize wire lengths in routing weights.
NOMINAL_PITCH_MM = 2.5


def default_link_weight(link: Link) -> float:
    """Nominal per-hop routing weight.

    A wire hop costs a router traversal (0.6) plus a wire term scaled by
    its physical length (0.4 per pitch): hop-minimal routing alone would
    happily take two long diagonal links covering far more wire
    millimeters than the Manhattan distance, which costs both energy
    (pJ/bit/mm) and repeater latency -- so the weight penalizes length,
    as deterministic routers over express channels do.  A unit-pitch wire
    keeps weight 1.0, so mesh routing is unchanged.

    A wireless hop costs 1.2: a router traversal plus token/propagation
    overhead but no distance term, which is exactly why wireless wins for
    long-range transfers (paper Sec. 6 and the energy crossover of
    :mod:`repro.noc.energy`).
    """
    if link.kind is LinkKind.WIRELESS:
        return 1.2
    return 0.6 + 0.4 * (link.length_mm / NOMINAL_PITCH_MM)


def build_routing_table(
    topology: Topology,
    weight: Optional[Callable[[Link], float]] = None,
) -> RoutingTable:
    """Weighted shortest-path routing table (deterministic tie-breaks)."""
    weight = weight or default_link_weight
    n = topology.num_nodes
    rows, cols, data = [], [], []
    for link in topology.links:
        w = weight(link)
        if w <= 0:
            raise ValueError(f"link weight must be > 0, got {w} for {link}")
        # Deterministic micro-perturbation breaks ties identically across
        # runs and platforms (no dict-order dependence).
        w = w * (1.0 + 1e-9 * ((link.a * 131 + link.b * 17) % 97))
        rows.extend((link.a, link.b))
        cols.extend((link.b, link.a))
        data.extend((w, w))
    graph = csr_matrix((data, (rows, cols)), shape=(n, n))
    _dist, predecessors = dijkstra(
        graph, directed=False, return_predecessors=True
    )
    if np.isinf(_dist).any():
        raise ValueError(f"topology {topology.name!r} is not connected")
    return RoutingTable(topology, predecessors)


def build_mesh_routing(topology: Topology) -> "MeshRoutingTable":
    """XY routing for a mesh topology."""
    return MeshRoutingTable(topology)


class MeshRoutingTable(RoutingTable):
    """Dimension-ordered XY routing (the mesh baseline's deterministic
    router), exposed through the same interface as :class:`RoutingTable`."""

    def __init__(self, topology: Topology):
        # No Dijkstra predecessor matrix needed; paths come from XY
        # geometry (a predecessor view is synthesized on demand).
        super().__init__(topology, predecessors=np.empty((0, 0)))
        self._xy_predecessors: Optional[np.ndarray] = None

    def path(self, src: int, dst: int) -> Tuple[int, ...]:
        if src == dst:
            return (src,)
        key = (src, dst)
        cached = self._cache.get(key)
        if cached is None:
            cached = tuple(xy_route(self.topology.geometry, src, dst))
            self._cache[key] = cached
        return cached

    def predecessor_matrix(self) -> np.ndarray:
        """Synthesized XY predecessors: walking back from *dst*, the Y leg
        unwinds first (XY routes move X then Y), then the X leg."""
        if self._xy_predecessors is None:
            geometry = self.topology.geometry
            n = geometry.num_nodes
            nodes = np.arange(n)
            columns = nodes % geometry.columns
            rows = nodes // geometry.columns
            drow = rows[None, :] - rows[:, None]  # dst_row - src_row
            dcol = columns[None, :] - columns[:, None]
            pred = np.where(
                drow != 0,
                nodes[None, :] - np.sign(drow) * geometry.columns,
                nodes[None, :] - np.sign(dcol),
            ).astype(np.int32)
            np.fill_diagonal(pred, -9999)
            self._xy_predecessors = pred
        return self._xy_predecessors

    def _build_hop_matrix(self) -> np.ndarray:
        # An XY route is exactly the Manhattan walk between the endpoints.
        geometry = self.topology.geometry
        nodes = np.arange(geometry.num_nodes)
        columns = nodes % geometry.columns
        rows = nodes // geometry.columns
        return np.abs(columns[:, None] - columns[None, :]) + np.abs(
            rows[:, None] - rows[None, :]
        )


def average_weighted_hops(
    table: RoutingTable, traffic: np.ndarray
) -> float:
    """Traffic-weighted mean hop count (the SA placement objective).

    Vectorized over the table's cached hop matrix, so repeated objective
    evaluations (one per SA move) cost one masked reduction instead of an
    O(n^2) Python walk.  Diagonal and non-positive entries are excluded,
    matching the original per-pair loop.
    """
    n = table.topology.num_nodes
    if traffic.shape != (n, n):
        raise ValueError(f"traffic matrix {traffic.shape} does not match {n} nodes")
    mask = traffic > 0
    np.fill_diagonal(mask, False)
    total_traffic = float(traffic.sum(where=mask))
    if total_traffic == 0:
        return 0.0
    hops = table.hop_matrix()
    total_hops = float((traffic * hops).sum(where=mask))
    return total_hops / total_traffic
