"""Wireless-interface placement and the two methodologies of Sec. 6.

The paper proposes two ways to place the 12 WIs (3 channels x 4 clusters)
and map threads:

1. **Minimized hop count** -- threads are first mapped to minimize the
   distance of highly communicating cores, then simulated annealing
   searches WI placements minimizing the *traffic-weighted average hop
   count*.
2. **Maximized wireless utilization** -- WIs sit at each cluster's center
   so most cores have cheap wireless access, and the thread mapping
   places heavily communicating threads near WIs ("logically near,
   physically far").

This module implements the placement half of both; thread mapping lives
in :mod:`repro.mapping.thread_mapping`.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import dijkstra

from repro.noc.topology import GridGeometry, LinkKind, Topology
from repro.noc.wireless import WirelessSpec, assign_wireless_links
from repro.utils.rng import SeedLike, derive_rng

Placement = Dict[int, List[int]]


def cluster_members(clusters: Sequence[int]) -> Dict[int, List[int]]:
    members: Dict[int, List[int]] = {}
    for node, cid in enumerate(clusters):
        members.setdefault(cid, []).append(node)
    return members


def center_wireless_placement(
    geometry: GridGeometry,
    clusters: Sequence[int],
    num_channels: int = 3,
) -> Placement:
    """WIs at each cluster's geometric center (max-wireless-utilization).

    Per cluster, the ``num_channels`` nodes closest to the cluster
    centroid get one WI each; channel *c* takes the *c*-th closest node,
    so the assignment is deterministic.
    """
    members = cluster_members(clusters)
    placement: Placement = {channel: [] for channel in range(num_channels)}
    for cid in sorted(members):
        nodes = members[cid]
        if len(nodes) < num_channels:
            raise ValueError(
                f"cluster {cid} has {len(nodes)} nodes < {num_channels} channels"
            )
        coordinates = np.array([geometry.coordinates(node) for node in nodes])
        centroid = coordinates.mean(axis=0)
        distances = np.linalg.norm(coordinates - centroid, axis=1)
        order = np.lexsort((nodes, distances))  # distance, then node id
        for channel in range(num_channels):
            placement[channel].append(nodes[order[channel]])
    return placement


def traffic_weighted_cost(
    topology: Topology,
    traffic: np.ndarray,
    wireless_hop_weight: float = 1.2,
) -> float:
    """Traffic-weighted mean routing distance over *topology*.

    Wire hops weigh 1, wireless hops ``wireless_hop_weight`` (matching the
    routing metric), so the cost is exactly what the deterministic router
    optimizes -- the SA objective of methodology 1.
    """
    n = topology.num_nodes
    if traffic.shape != (n, n):
        raise ValueError(f"traffic {traffic.shape} does not match {n} nodes")
    from repro.noc.routing import default_link_weight

    rows, cols, data = [], [], []
    for link in topology.links:
        weight = (
            wireless_hop_weight
            if link.kind is LinkKind.WIRELESS
            else default_link_weight(link)
        )
        rows.extend((link.a, link.b))
        cols.extend((link.b, link.a))
        data.extend((weight, weight))
    graph = csr_matrix((data, (rows, cols)), shape=(n, n))
    distance = dijkstra(graph, directed=False)
    if np.isinf(distance).any():
        return float("inf")
    total = traffic.sum()
    if total <= 0:
        return 0.0
    return float((distance * traffic).sum() / total)


def optimize_wireless_placement(
    wireline: Topology,
    clusters: Sequence[int],
    traffic: np.ndarray,
    spec: WirelessSpec = WirelessSpec(),
    iterations: int = 400,
    initial_temperature: Optional[float] = None,
    cooling: float = 0.985,
    seed: SeedLike = None,
    cost_fn: Optional[Callable[[Topology], float]] = None,
) -> Placement:
    """Simulated-annealing WI placement (min-hop-count methodology).

    Starts from the center placement and anneals single-WI moves within
    clusters, minimizing the traffic-weighted routing distance of the
    combined wireline + wireless topology.
    """
    members = cluster_members(clusters)
    rng = derive_rng(seed)
    cost_of = cost_fn or (lambda topo: traffic_weighted_cost(topo, traffic))

    def evaluate(placement: Placement) -> float:
        return cost_of(assign_wireless_links(wireline, placement, spec))

    current = {
        channel: list(nodes)
        for channel, nodes in center_wireless_placement(
            wireline.geometry, clusters, spec.num_channels
        ).items()
    }
    current_cost = evaluate(current)
    best, best_cost = _copy_placement(current), current_cost

    temperature = (
        initial_temperature
        if initial_temperature is not None
        else max(current_cost * 0.1, 1e-6)
    )
    cluster_ids = sorted(members)
    for _ in range(iterations):
        candidate = _copy_placement(current)
        channel = int(rng.integers(spec.num_channels))
        slot = int(rng.integers(len(cluster_ids)))
        cid = cluster_ids[slot]
        occupied = {
            candidate[c][slot] for c in range(spec.num_channels)
        }
        free_nodes = [n for n in members[cid] if n not in occupied]
        if not free_nodes:
            continue
        candidate[channel][slot] = int(rng.choice(free_nodes))
        candidate_cost = evaluate(candidate)
        delta = candidate_cost - current_cost
        if delta <= 0 or rng.random() < math.exp(-delta / max(temperature, 1e-12)):
            current, current_cost = candidate, candidate_cost
            if current_cost < best_cost:
                best, best_cost = _copy_placement(current), current_cost
        temperature *= cooling
    return best


def _copy_placement(placement: Placement) -> Placement:
    return {channel: list(nodes) for channel, nodes in placement.items()}
