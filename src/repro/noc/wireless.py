"""Wireless overlay: mm-wave interfaces, channels and the token MAC.

Following the paper (Sec. 6) and its companion work (Deb et al., IEEE TC
2013; Wettin et al., DATE 2013):

* three non-overlapping mm-wave channels can coexist on chip;
* the optimal wireless-interface (WI) count for a 64-core system is 12,
  so each of the four VFI clusters hosts three WIs -- one per channel;
* WIs sharing a channel arbitrate with a token: a WI may transmit only
  while holding the channel token, so each channel is a serialized shared
  medium with a token-rotation overhead;
* WI ports carry deeper (8-flit) buffers than wired ports (2 flits) to
  hide token-wait latency.

A wireless "link" in the topology connects two WIs tuned to the same
channel; all links of one channel share that channel's bandwidth.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.noc.topology import Link, LinkKind, Topology
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class WirelessSpec:
    """Physical parameters of the wireless overlay."""

    num_channels: int = 3
    #: Channel data rate; mm-wave OOK transceivers in the companion work
    #: sustain 16 Gbps per channel.
    bandwidth_bps: float = 16e9
    #: One-way over-the-air + transceiver latency.
    propagation_s: float = 1.0e-9
    #: Average token-acquisition overhead per packet (token rotation
    #: among the channel's WIs).
    token_overhead_s: float = 2.0e-9
    #: Buffer depth (flits) at WI ports; wired ports use 2 flits.
    wi_buffer_flits: int = 8

    #: Ring size the :attr:`token_overhead_s` figure was measured for
    #: (the paper's 4-island platform: one WI per island per channel).
    BASELINE_RING_WIS = 4

    def __post_init__(self) -> None:
        check_positive("num_channels", self.num_channels)
        check_positive("bandwidth_bps", self.bandwidth_bps)
        check_positive("propagation_s", self.propagation_s, allow_zero=True)
        check_positive("token_overhead_s", self.token_overhead_s, allow_zero=True)
        check_positive("wi_buffer_flits", self.wi_buffer_flits)

    def sized_for_islands(self, num_islands: int) -> "WirelessSpec":
        """Spec with the token overhead scaled to a *num_islands*-WI ring.

        Each channel's token circulates over one WI per island, so the
        mean token-acquisition wait grows linearly with the ring length.
        The paper's 4-island die returns ``self`` unchanged.
        """
        check_positive("num_islands", num_islands)
        if num_islands == self.BASELINE_RING_WIS:
            return self
        from dataclasses import replace

        scale = num_islands / self.BASELINE_RING_WIS
        return replace(self, token_overhead_s=self.token_overhead_s * scale)


@dataclass
class WirelessChannel:
    """One shared mm-wave channel and the WIs tuned to it."""

    index: int
    wi_nodes: List[int]

    def link_pairs(self) -> List[tuple]:
        return list(itertools.combinations(sorted(self.wi_nodes), 2))


def assign_wireless_links(
    base: Topology,
    placement: Dict[int, List[int]],
    spec: WirelessSpec = WirelessSpec(),
    name: str = "winoc",
) -> Topology:
    """Overlay wireless links on *base* according to *placement*.

    ``placement`` maps channel index -> WI node list (one node per VFI
    cluster in the paper's configuration).  Every pair of same-channel WIs
    becomes a single-hop wireless link; the flow model enforces the shared
    per-channel capacity.
    """
    if len(placement) != spec.num_channels:
        raise ValueError(
            f"placement covers {len(placement)} channels, "
            f"spec has {spec.num_channels}"
        )
    wireless: List[Link] = []
    seen_nodes: set = set()
    for channel_index, nodes in sorted(placement.items()):
        if not 0 <= channel_index < spec.num_channels:
            raise ValueError(f"channel index {channel_index} out of range")
        if len(nodes) < 2:
            raise ValueError(
                f"channel {channel_index} has {len(nodes)} WIs; needs >= 2"
            )
        if len(set(nodes)) != len(nodes):
            raise ValueError(f"channel {channel_index} repeats a WI node")
        overlap = seen_nodes.intersection(nodes)
        if overlap:
            raise ValueError(
                f"nodes {sorted(overlap)} carry more than one WI; each switch "
                "gets at most one wireless port"
            )
        seen_nodes.update(nodes)
        channel = WirelessChannel(channel_index, list(nodes))
        for a, b in channel.link_pairs():
            if any(link.other(a) == b for link in base.adjacency()[a]):
                # A direct wire already joins this WI pair; the router
                # would always prefer the 1-hop wire (lower weight), so a
                # parallel wireless link would never carry traffic.
                continue
            wireless.append(
                Link(
                    a,
                    b,
                    LinkKind.WIRELESS,
                    length_mm=base.geometry.distance_mm(a, b),
                    channel=channel_index,
                )
            )
    return base.with_links(wireless, name=name)


def channels_of(topology: Topology) -> Dict[int, WirelessChannel]:
    """Recover channel membership from a topology's wireless links."""
    nodes_by_channel: Dict[int, set] = {}
    for link in topology.wireless_links():
        nodes_by_channel.setdefault(link.channel, set()).update((link.a, link.b))
    return {
        index: WirelessChannel(index, sorted(nodes))
        for index, nodes in sorted(nodes_by_channel.items())
    }


def total_wireless_interfaces(topology: Topology) -> int:
    nodes = set()
    for link in topology.wireless_links():
        nodes.update((link.a, link.b))
    return len(nodes)


def validate_paper_overlay(
    topology: Topology, clusters: Sequence[int], spec: WirelessSpec
) -> None:
    """Check the paper's 64-core overlay invariants: 12 WIs, 3 per cluster,
    each cluster hosting one WI per channel."""
    channels = channels_of(topology)
    if len(channels) != spec.num_channels:
        raise ValueError(
            f"{len(channels)} channels in topology, expected {spec.num_channels}"
        )
    wi_total = total_wireless_interfaces(topology)
    expected = spec.num_channels * len(set(clusters))
    if wi_total != expected:
        raise ValueError(f"{wi_total} WIs in topology, expected {expected}")
    for index, channel in channels.items():
        channel_clusters = [clusters[node] for node in channel.wi_nodes]
        if len(set(channel_clusters)) != len(channel_clusters):
            raise ValueError(
                f"channel {index} places two WIs in one cluster: {channel.wi_nodes}"
            )
