"""ASCII visualization of topologies and VFI layouts.

Terminal-friendly renderings for quick inspection of generated fabrics:
the die grid with island ids and wireless-interface markers, the V/F map
of a design, and the wire-length histogram of a small-world fabric.
Used by the CLI (``python -m repro topology``) and the examples.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Optional, Sequence

from typing import TYPE_CHECKING

from repro.noc.topology import LinkKind, Topology
from repro.noc.wireless import channels_of

if TYPE_CHECKING:  # avoid a circular import (vfi.islands uses noc.topology)
    from repro.vfi.islands import VfPoint, VfiLayout


def render_die_map(
    topology: Topology,
    clusters: Optional[Sequence[int]] = None,
) -> str:
    """Grid view: island id per tile, ``*`` marking wireless interfaces.

    Example cell: ``2*`` is a cluster-2 tile hosting a WI.
    """
    geometry = topology.geometry
    wi_nodes = set()
    for link in topology.wireless_links():
        wi_nodes.update((link.a, link.b))
    rows = []
    for row in range(geometry.rows):
        cells = []
        for column in range(geometry.columns):
            node = geometry.node_at(column, row)
            island = str(clusters[node]) if clusters is not None else "."
            marker = "*" if node in wi_nodes else " "
            cells.append(f"{island}{marker}")
        rows.append(" ".join(cells))
    legend = "legend: digit = island id, * = wireless interface"
    return "\n".join(rows + [legend])


def render_vf_map(layout: "VfiLayout", points: Sequence["VfPoint"]) -> str:
    """Grid view of per-tile supply voltage (the island V/F floorplan)."""
    if len(points) != layout.num_clusters:
        raise ValueError(
            f"{len(points)} V/F points for {layout.num_clusters} islands"
        )
    geometry = layout.geometry
    rows = []
    for row in range(geometry.rows):
        cells = []
        for column in range(geometry.columns):
            node = geometry.node_at(column, row)
            point = points[layout.cluster_of(node)]
            cells.append(f"{point.voltage_v:.1f}")
        rows.append(" ".join(cells))
    labels = ", ".join(
        f"island {island}: {point.label}" for island, point in enumerate(points)
    )
    return "\n".join(rows + [labels])


def render_degree_map(topology: Topology) -> str:
    """Grid view of switch degrees (excluding the local core port)."""
    geometry = topology.geometry
    rows = []
    for row in range(geometry.rows):
        cells = [
            str(topology.degree(geometry.node_at(column, row)))
            for column in range(geometry.columns)
        ]
        rows.append(" ".join(cells))
    rows.append(
        f"average degree {topology.average_degree():.2f}, "
        f"links {len(topology.links)}"
    )
    return "\n".join(rows)


def render_link_histogram(topology: Topology, bucket_mm: float = 2.5) -> str:
    """Wire-length histogram plus the wireless channel inventory."""
    if bucket_mm <= 0:
        raise ValueError(f"bucket_mm must be > 0, got {bucket_mm}")
    buckets: Counter = Counter()
    for link in topology.links:
        if link.kind is LinkKind.WIRE:
            buckets[int(link.length_mm // bucket_mm)] += 1
    lines = ["wire length histogram:"]
    for bucket in sorted(buckets):
        lo, hi = bucket * bucket_mm, (bucket + 1) * bucket_mm
        count = buckets[bucket]
        lines.append(f"  {lo:5.1f}-{hi:5.1f} mm | {'#' * count} {count}")
    channels = channels_of(topology)
    if channels:
        lines.append("wireless channels:")
        for index, channel in channels.items():
            lines.append(f"  channel {index}: WIs at {channel.wi_nodes}")
    else:
        lines.append("no wireless links")
    return "\n".join(lines)


def describe_topology(
    topology: Topology, clusters: Optional[Sequence[int]] = None
) -> str:
    """Complete textual description (die map + degrees + links)."""
    sections = [
        f"topology: {topology.name} "
        f"({topology.geometry.columns}x{topology.geometry.rows})",
        render_die_map(topology, clusters),
        "switch degrees:",
        render_degree_map(topology),
        render_link_histogram(topology),
    ]
    return "\n\n".join(sections)
