"""Vectorized all-pairs latency evaluation.

:meth:`repro.noc.network.FlowNetworkModel.latency` walks a path per call;
the system simulator needs all-pairs latencies for several packet classes
at every phase relaxation, which would cost ~10^4 path walks per refresh.
:class:`DenseLatencyModel` precomputes the load-independent pieces
(router pipeline, wire traversal, synchronizers, wireless propagation and
token overhead) per (src, dst) pair once, and reduces the load-dependent
pieces to one sparse mat-vec (queueing) plus a ragged min (bottleneck
capacity) over shared *resources* -- directed wire links and wireless
channels.

``tests/noc/test_dense.py`` verifies bit-equality (to float tolerance)
against the reference per-path implementation.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np
from scipy.sparse import csr_matrix

from repro.noc.network import FlowNetworkModel
from repro.noc.topology import LinkKind


class DenseLatencyModel:
    """All-pairs latency under load, vectorized over path resources.

    With ``bulk=True`` the model evaluates the wire-preferring bulk
    message class (see :class:`repro.noc.network.FlowNetworkModel`)."""

    def __init__(self, model: FlowNetworkModel, bulk: bool = False):
        self.model = model
        self.bulk = bulk
        self.num_nodes = model.topology.num_nodes
        self._num_links = len(model.topology.links)
        # Everything below is load-independent; share it across rebuilt
        # networks of the same platform (same fabric and clocks) through
        # the network's static cache.  The frequency fingerprint guards
        # against a stale cache being handed to a re-clocked network.
        key = (
            "dense_static",
            bulk,
            model.topology.epoch,
            len(model.topology.links),
        )
        static = model.static_cache.get(key)
        if static is None or not np.array_equal(
            static["node_freq"], model._node_freq
        ):
            static = self._build_static(model, bulk)
            model.static_cache[key] = static
        self.num_resources = static["num_resources"]
        self._service = static["service"]
        self._capacity = static["capacity"]
        self._buffer_flits = static["buffer_flits"]
        self._head = static["head"]
        self._usage = static["usage"]
        self._binary_usage = static["binary_usage"]
        self._resources_per_pair = static["resources_per_pair"]
        self._raw_bottleneck = static["raw_bottleneck"]

    def _build_static(self, model: FlowNetworkModel, bulk: bool) -> Dict:
        if model.params.dense_block_nodes is not None:
            return self._build_static_blocked(
                model, bulk, model.params.dense_block_nodes
            )
        n = self.num_nodes
        links = model.topology.links
        num_links = len(links)
        num_channels = max(model.wireless.num_channels, 1)
        num_resources = 2 * num_links + num_channels

        # Per-resource service time, raw capacity and buffer bound.
        service = np.zeros(num_resources)
        capacity = np.zeros(num_resources)
        buffer_flits = np.zeros(num_resources)
        node_freq = model._node_freq
        params = model.params
        for index, link in enumerate(links):
            if link.kind is LinkKind.WIRELESS:
                continue  # wireless hops bill against their channel
            f_link = min(node_freq[link.a], node_freq[link.b])
            cap = params.flit_bits * f_link / params.link_traversal_cycles
            for direction in (0, 1):
                resource = 2 * index + direction
                service[resource] = params.link_traversal_cycles / f_link
                capacity[resource] = cap
                buffer_flits[resource] = params.wire_buffer_flits
        for channel in range(num_channels):
            resource = 2 * num_links + channel
            service[resource] = params.flit_bits / model.wireless.bandwidth_bps
            capacity[resource] = model.wireless.bandwidth_bps
            buffer_flits[resource] = params.wi_buffer_flits

        # Static head latency and path resource membership per pair.
        head = np.zeros((n, n))
        rows: List[int] = []
        cols: List[int] = []
        resources_per_pair: List[np.ndarray] = []
        for src in range(n):
            for dst in range(n):
                pair = src * n + dst
                if src == dst:
                    head[src, dst] = params.router_pipeline_cycles / node_freq[src]
                    resources_per_pair.append(np.empty(0, dtype=np.int64))
                    continue
                pair_resources: List[int] = []
                t = 0.0
                node = src
                path_links, directions = model._path(src, dst, bulk=bulk)
                for link, direction in zip(path_links, directions):
                    peer = link.other(node)
                    t += params.router_pipeline_cycles / node_freq[node]
                    index = model._link_index[link.key]
                    if link.kind is LinkKind.WIRELESS:
                        t += (
                            model.wireless.propagation_s
                            + model.wireless.token_overhead_s
                        )
                        resource = 2 * num_links + link.channel
                    else:
                        f_link = min(node_freq[node], node_freq[peer])
                        t += params.link_traversal_cycles / f_link
                        resource = 2 * index + direction
                    pair_resources.append(resource)
                    if model.clusters[node] != model.clusters[peer]:
                        t += params.domain_sync_cycles / min(
                            node_freq[node], node_freq[peer]
                        )
                    node = peer
                t += params.router_pipeline_cycles / node_freq[dst]
                head[src, dst] = t
                unique = np.array(sorted(set(pair_resources)), dtype=np.int64)
                resources_per_pair.append(unique)
                rows.extend([pair] * len(pair_resources))
                cols.extend(pair_resources)
        usage = csr_matrix(
            (np.ones(len(rows)), (rows, cols)),
            shape=(n * n, num_resources),
        )
        # Deduplicated membership (a pair that crosses one channel twice
        # still meets it once for min/max reductions).
        binary_rows = np.concatenate(
            [np.full(len(r), pair, dtype=np.int64)
             for pair, r in enumerate(resources_per_pair)]
            or [np.empty(0, dtype=np.int64)]
        )
        binary_cols = np.concatenate(resources_per_pair or [np.empty(0, dtype=np.int64)])
        binary_usage = csr_matrix(
            (np.ones(len(binary_rows)), (binary_rows, binary_cols)),
            shape=(n * n, num_resources),
        )
        # Raw per-pair line rate (load independent): min capacity on path.
        raw_bottleneck = np.full(n * n, np.inf)
        for pair, resources in enumerate(resources_per_pair):
            if len(resources):
                raw_bottleneck[pair] = capacity[resources].min()
        return {
            "node_freq": node_freq.copy(),
            "num_resources": num_resources,
            "service": service,
            "capacity": capacity,
            "buffer_flits": buffer_flits,
            "head": head,
            "usage": usage,
            "binary_usage": binary_usage,
            "resources_per_pair": resources_per_pair,
            "raw_bottleneck": raw_bottleneck.reshape(n, n),
        }

    def _build_static_blocked(
        self, model: FlowNetworkModel, bulk: bool, block: int
    ) -> Dict:
        """Blocked float32 build of the static tables (large dies).

        Identical semantics to :meth:`_build_static`, but per-pair paths
        are never materialized: every source walks all destinations'
        predecessor chains in lockstep over dense per-edge lookup tables,
        head latencies accumulate in float64 and store as float32, and
        usage entries are built as int arrays per source block.  Peak
        transient memory is bounded by the block size instead of the
        O(n^2 * hops) Python lists of the exact builder.
        """
        from repro.noc.pathwalk import (
            assemble_blocked_csr, edge_resource_tables, walk_steps_block,
        )

        n = self.num_nodes
        links = model.topology.links
        num_links = len(links)
        num_channels = max(model.wireless.num_channels, 1)
        num_resources = 2 * num_links + num_channels

        # Per-resource service time, raw capacity and buffer bound
        # (identical to the exact builder; small, kept float64).
        service = np.zeros(num_resources)
        capacity = np.zeros(num_resources)
        buffer_flits = np.zeros(num_resources)
        node_freq = model._node_freq
        params = model.params
        for index, link in enumerate(links):
            if link.kind is LinkKind.WIRELESS:
                continue
            f_link = min(node_freq[link.a], node_freq[link.b])
            cap = params.flit_bits * f_link / params.link_traversal_cycles
            for direction in (0, 1):
                resource = 2 * index + direction
                service[resource] = params.link_traversal_cycles / f_link
                capacity[resource] = cap
                buffer_flits[resource] = params.wire_buffer_flits
        for channel in range(num_channels):
            resource = 2 * num_links + channel
            service[resource] = params.flit_bits / model.wireless.bandwidth_bps
            capacity[resource] = model.wireless.bandwidth_bps
            buffer_flits[resource] = params.wi_buffer_flits

        # Dense per-edge tables: head-latency contribution, billed
        # resource column and raw capacity of each adjacent hop u -> v.
        link_col, chan_col = edge_resource_tables(model)
        billed_col = np.where(chan_col >= 0, chan_col, link_col)
        pipeline_s = params.router_pipeline_cycles / node_freq
        hop_head = np.zeros((n, n))
        hop_cap = np.zeros((n, n))
        clusters = np.asarray(model.clusters)
        for link in links:
            for u, v in ((link.a, link.b), (link.b, link.a)):
                t = pipeline_s[u]
                if link.kind is LinkKind.WIRELESS:
                    t += (
                        model.wireless.propagation_s
                        + model.wireless.token_overhead_s
                    )
                    cap = model.wireless.bandwidth_bps
                else:
                    f_link = min(node_freq[u], node_freq[v])
                    t += params.link_traversal_cycles / f_link
                    cap = params.flit_bits * f_link / params.link_traversal_cycles
                if clusters[u] != clusters[v]:
                    t += params.domain_sync_cycles / min(
                        node_freq[u], node_freq[v]
                    )
                hop_head[u, v] = t
                hop_cap[u, v] = cap

        routing = model.bulk_routing if bulk else model.routing
        pred = routing.predecessor_matrix()
        head = np.zeros((n, n), dtype=np.float32)
        raw_bottleneck = np.full((n, n), np.inf, dtype=np.float32)

        def block_entries(start, end):
            # The whole block walks in lockstep: per step, each still-
            # walking (src, dst) route appears exactly once, so the 2-D
            # fancy-indexed += sees no duplicate indices and accumulates
            # each route's hops in the same back-to-front order as the
            # per-source walk -- float64 sums are bit-identical.
            srcs = np.arange(start, end)
            base = (srcs * n).astype(np.int32)
            acc_head = np.zeros((end - start, n))
            acc_cap = np.full((end - start, n), np.inf)
            rows_parts: List[np.ndarray] = []
            cols_parts: List[np.ndarray] = []
            for rows, dst, prev, cur in walk_steps_block(
                pred[start:end], srcs, n
            ):
                acc_head[rows, dst] += hop_head[prev, cur]
                acc_cap[rows, dst] = np.minimum(
                    acc_cap[rows, dst], hop_cap[prev, cur]
                )
                rows_parts.append(base[rows] + dst.astype(np.int32))
                cols_parts.append(billed_col[prev, cur])
            # Ejection pipeline at every destination; the diagonal
            # (zero hops) collapses to the local-port traversal.
            acc_head += pipeline_s
            head[start:end] = acc_head
            raw_bottleneck[start:end] = acc_cap
            if not rows_parts:
                empty = np.empty(0, dtype=np.int32)
                return empty, empty
            return np.concatenate(rows_parts), np.concatenate(cols_parts)

        usage = assemble_blocked_csr(block_entries, n, block, num_resources)
        # Deduplicated membership: the constructor already summed
        # duplicate entries, so clamping the stored data to 1 is exactly
        # the per-pair unique-resource matrix of the exact builder.  The
        # index structure is identical, so share indices/indptr with
        # ``usage`` instead of copying them.
        binary_usage = csr_matrix(
            (
                np.ones_like(usage.data),
                usage.indices,
                usage.indptr,
            ),
            shape=usage.shape,
        )
        return {
            "node_freq": node_freq.copy(),
            "num_resources": num_resources,
            "service": service,
            "capacity": capacity,
            "buffer_flits": buffer_flits,
            "head": head,
            "usage": usage,
            "binary_usage": binary_usage,
            # Not materialized in blocked mode (would cost O(n^2) small
            # arrays); nothing outside the exact builder consumes it.
            "resources_per_pair": None,
            "raw_bottleneck": raw_bottleneck,
        }

    # ------------------------------------------------------------------ #

    def _resource_load(self) -> np.ndarray:
        load = np.zeros(self.num_resources)
        link_load = self.model.load.link_load
        for index, link in enumerate(self.model.topology.links):
            if link.kind is LinkKind.WIRELESS:
                continue
            load[2 * index] = link_load[index, 0]
            load[2 * index + 1] = link_load[index, 1]
        channels = self.model.load.channel_load
        load[2 * self._num_links : 2 * self._num_links + len(channels)] = channels
        return load

    def utilization(self) -> np.ndarray:
        """Per-resource utilization (capped at the model's maximum)."""
        load = self._resource_load()
        with np.errstate(divide="ignore", invalid="ignore"):
            rho = np.where(self._capacity > 0, load / self._capacity, 0.0)
        return np.minimum(rho, self.model.params.max_utilization)

    def latency_matrices(
        self, payload_bits: Sequence[float]
    ) -> Dict[float, np.ndarray]:
        """All-pairs latency for each payload size, under current load."""
        n = self.num_nodes
        rho = self.utilization()
        queue_per_resource = np.minimum(
            self._service * rho / (2.0 * (1.0 - rho)),
            np.maximum(self._buffer_flits - 1, 0) * self._service,
        )
        model = self.model
        if model._tracer.enabled and model._wireless_channels:
            # Channel-access wait (token acquisition + queueing) per shared
            # channel, one observation per load refresh.
            token = model.wireless.token_overhead_s
            for channel in model._wireless_channels:
                model._tracer.histogram_record(
                    f"noc.token_wait_s/{model.trace_label}",
                    token + queue_per_resource[2 * self._num_links + channel],
                )
        queue = np.asarray(
            self._usage @ queue_per_resource
        ).reshape(n, n)
        # Raw line rate for per-packet serialization (contention is already
        # in the queueing term; see repro.noc.network module docs).
        bottleneck = self._raw_bottleneck
        head = self._head + queue
        return {
            bits: head + np.where(np.isinf(bottleneck), 0.0, bits / bottleneck)
            for bits in payload_bits
        }

    def raw_bottleneck_matrix(self) -> np.ndarray:
        """Load-independent per-pair bottleneck line rate (bits/s)."""
        return self._raw_bottleneck

    def bottleneck_matrix(self) -> np.ndarray:
        """Effective per-pair path capacity (bits/s) under current load.

        The per-pair min over path resources is evaluated as a sparse
        row-max of inverse capacities (all effective capacities are
        positive because utilization is capped below 1), so a refresh
        costs one sparse reduction instead of an O(n^2) Python loop.
        """
        rho = self.utilization()
        effective = self._capacity * (1.0 - rho)
        inverse = np.zeros(self.num_resources)
        used = effective > 0
        inverse[used] = 1.0 / effective[used]
        # Per-pair max of inverse capacities over the pair's resources,
        # straight off the csr structure: gather by column index, then a
        # segmented max per row.  Equivalent to
        # ``binary_usage.multiply(inverse).max(axis=1)`` (inverse >= 0,
        # so implicit zeros never win) without materializing the scaled
        # sparse intermediate on every load refresh.
        usage = self._binary_usage
        worst = np.zeros(usage.shape[0])
        if len(usage.indices):
            data = inverse[usage.indices]
            indptr = usage.indptr
            starts = np.minimum(indptr[:-1], len(data) - 1)
            worst = np.maximum.reduceat(data, starts)
            worst[indptr[:-1] == indptr[1:]] = 0.0
        n = self.num_nodes
        bottleneck = np.full(n * n, np.inf)
        nonzero = worst > 0
        bottleneck[nonzero] = 1.0 / worst[nonzero]
        return bottleneck.reshape(n, n)


class PairwiseEnergy:
    """Load-independent per-pair transfer energy, hops and wireless share.

    Path energy per bit never depends on load, so it is precomputed for
    every (src, dst) pair; recording a transfer is then O(1) while still
    feeding the same counters as
    :meth:`repro.noc.energy.NocEnergyModel.transfer_energy`.
    """

    def __init__(self, model: FlowNetworkModel, bulk: bool = False):
        self.model = model
        self.bulk = bulk
        # Path energies depend only on the fabric, never on clocks or
        # load; share the tables across rebuilt networks of one platform.
        key = (
            "pairwise_static",
            bulk,
            model.topology.epoch,
            len(model.topology.links),
        )
        static = model.static_cache.get(key)
        if static is None:
            static = self._build_static(model, bulk)
            model.static_cache[key] = static
        self.energy_per_bit, self.hops, self.wireless_links = static

    @staticmethod
    def _build_static(model: FlowNetworkModel, bulk: bool):
        if model.params.dense_block_nodes is not None:
            return PairwiseEnergy._build_static_blocked(model, bulk)
        n = model.topology.num_nodes
        params = model.energy.params
        energy_per_bit = np.zeros((n, n))  # joules per bit
        hops = np.zeros((n, n))
        wireless_links = np.zeros((n, n))  # wireless hops on path
        for src in range(n):
            for dst in range(n):
                if src == dst:
                    continue
                links, _ = model._path(src, dst, bulk=bulk)
                pj_per_bit = params.router_pj_per_bit  # ejection router
                wireless = 0
                for link in links:
                    pj_per_bit += params.router_pj_per_bit
                    if link.kind is LinkKind.WIRELESS:
                        pj_per_bit += params.wireless_pj_per_bit
                        wireless += 1
                    else:
                        pj_per_bit += (
                            params.wire_pj_per_bit_per_mm * link.length_mm
                        )
                energy_per_bit[src, dst] = pj_per_bit * 1e-12
                hops[src, dst] = len(links)
                wireless_links[src, dst] = wireless
        return energy_per_bit, hops, wireless_links

    @staticmethod
    def _build_static_blocked(model: FlowNetworkModel, bulk: bool):
        """Blocked float32 build: per-edge energy tables + lockstep walks
        (same quantities as the exact builder, no per-pair path lists)."""
        from repro.noc.pathwalk import walk_steps_block

        n = model.topology.num_nodes
        params = model.energy.params
        hop_pj = np.zeros((n, n))
        hop_wireless = np.zeros((n, n))
        for link in model.topology.links:
            if link.kind is LinkKind.WIRELESS:
                pj = params.router_pj_per_bit + params.wireless_pj_per_bit
                wireless = 1.0
            else:
                pj = (
                    params.router_pj_per_bit
                    + params.wire_pj_per_bit_per_mm * link.length_mm
                )
                wireless = 0.0
            for u, v in ((link.a, link.b), (link.b, link.a)):
                hop_pj[u, v] = pj
                hop_wireless[u, v] = wireless
        routing = model.bulk_routing if bulk else model.routing
        pred = routing.predecessor_matrix()
        energy_per_bit = np.zeros((n, n), dtype=np.float32)
        hops = np.zeros((n, n), dtype=np.float32)
        wireless_links = np.zeros((n, n), dtype=np.float32)
        block = model.params.dense_block_nodes or n
        for start in range(0, n, block):
            end = min(start + block, n)
            srcs = np.arange(start, end)
            acc_pj = np.zeros((end - start, n))
            acc_hops = np.zeros((end - start, n))
            acc_wireless = np.zeros((end - start, n))
            # Lockstep over the whole block; each (src, dst) route shows
            # up at most once per step, so the fancy-indexed += keeps the
            # per-route hop order (and float64 bits) of the old
            # one-source-at-a-time walk.
            for rows, dst, prev, cur in walk_steps_block(
                pred[start:end], srcs, n
            ):
                acc_pj[rows, dst] += hop_pj[prev, cur]
                acc_hops[rows, dst] += 1.0
                acc_wireless[rows, dst] += hop_wireless[prev, cur]
            # Ejection router on every non-trivial path (diagonal stays 0).
            acc_pj[acc_hops > 0] += params.router_pj_per_bit
            energy_per_bit[start:end] = acc_pj * 1e-12
            hops[start:end] = acc_hops
            wireless_links[start:end] = acc_wireless
        return energy_per_bit, hops, wireless_links

    def record(self, src: int, dst: int, bits: float) -> float:
        """O(1) equivalent of ``model.record_transfer(src, dst, bits)``."""
        if bits < 0:
            raise ValueError(f"bits must be >= 0, got {bits}")
        if src == dst or bits == 0:
            return 0.0
        energy = self.energy_per_bit[src, dst] * bits
        counters = self.model.energy
        counters.dynamic_joules += energy
        counters.bits_moved += bits
        counters.bit_hops += bits * self.hops[src, dst]
        counters.wireless_bits += bits * self.wireless_links[src, dst]
        if self.model._tracer.enabled:
            # Path lists are cached, so this is a lookup + O(hops) loop;
            # with the default NullTracer it costs one attribute check.
            links, _ = self.model._path(src, dst, bulk=self.bulk)
            self.model._count_flits(links, bits)
        return energy

    def record_aggregate(
        self,
        energy_j: float,
        bits: float,
        bit_hops: float,
        wireless_bits: float,
    ) -> float:
        """Feed pre-expected aggregates (e.g. bank-distribution averages)
        into the energy counters."""
        counters = self.model.energy
        counters.dynamic_joules += energy_j
        counters.bits_moved += bits
        counters.bit_hops += bit_hops
        counters.wireless_bits += wireless_bits
        tracer = self.model._tracer
        if tracer.enabled:
            # Aggregates have no single path; attribute expected (possibly
            # fractional) flit-hops to the medium-level counters only.
            flit_bits = self.model.params.flit_bits
            label = self.model.trace_label
            tracer.counter_add(
                "noc.flits.wireless", wireless_bits / flit_bits, key=label
            )
            tracer.counter_add(
                "noc.flits.wired", (bit_hops - wireless_bits) / flit_bits,
                key=label,
            )
        return energy_j
