"""NoC energy model.

Per-flit energies follow the paper's methodology: switch energy from a
synthesized 65-nm RTL netlist, wireline energy from HSPICE per unit
length, wireless energy from the mm-wave transceiver characterization of
the companion work (Deb et al., IEEE TC 2013).  We use per-*bit* constants
so flit width is a free parameter:

* router traversal (buffering + crossbar + arbitration): ~0.35 pJ/bit/hop;
* wireline traversal: ~1.2 pJ/bit/mm (65-nm global wire with repeaters);
* wireless transmission (TX + RX): ~2.3 pJ/bit regardless of distance
  (Deb et al. report 2.3 pJ/bit for the mm-wave transceiver pair).

The crossover is what the WiNoC exploits: beyond one ~2.5 mm mesh hop the
wire path costs more energy than one wireless transmission, so every
long-range transfer moved onto a wireless shortcut saves energy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.noc.topology import Link, LinkKind
from repro.utils.units import PJ
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class NocEnergyParams:
    router_pj_per_bit: float = 0.35
    wire_pj_per_bit_per_mm: float = 1.2
    wireless_pj_per_bit: float = 2.3
    #: Static power per switch (leakage + clock), scaled by V^2 at runtime.
    switch_leakage_w: float = 4.0e-3

    def __post_init__(self) -> None:
        check_positive("router_pj_per_bit", self.router_pj_per_bit)
        check_positive("wire_pj_per_bit_per_mm", self.wire_pj_per_bit_per_mm)
        check_positive("wireless_pj_per_bit", self.wireless_pj_per_bit)
        check_positive("switch_leakage_w", self.switch_leakage_w, allow_zero=True)


class NocEnergyModel:
    """Accumulates dynamic NoC energy per transfer.

    Dynamic energy of moving *bits* along a path is the sum of a router
    traversal per hop (plus the ejection router) and the link-specific
    transport term.  Static energy is charged per switch over the elapsed
    simulated time by :meth:`static_energy`.
    """

    def __init__(self, params: NocEnergyParams = NocEnergyParams()):
        self.params = params
        self.dynamic_joules = 0.0
        self.bits_moved = 0.0
        self.bit_hops = 0.0
        self.wireless_bits = 0.0

    def transfer_energy(self, links: Iterable[Link], bits: float) -> float:
        """Energy (J) to move *bits* along *links*; also accumulates."""
        if bits < 0:
            raise ValueError(f"bits must be >= 0, got {bits}")
        params = self.params
        energy_pj = 0.0
        hops = 0
        wireless_bits = 0.0
        for link in links:
            hops += 1
            energy_pj += params.router_pj_per_bit * bits
            if link.kind is LinkKind.WIRELESS:
                energy_pj += params.wireless_pj_per_bit * bits
                wireless_bits += bits
            else:
                energy_pj += params.wire_pj_per_bit_per_mm * link.length_mm * bits
        # Ejection router at the destination.
        energy_pj += params.router_pj_per_bit * bits
        energy = energy_pj * PJ
        self.dynamic_joules += energy
        self.bits_moved += bits
        self.bit_hops += bits * hops
        self.wireless_bits += wireless_bits
        return energy

    def static_energy(
        self, num_switches: int, elapsed_s: float, voltage_scale: float = 1.0
    ) -> float:
        """Leakage/clock energy of the switch fabric over *elapsed_s*."""
        if elapsed_s < 0:
            raise ValueError(f"elapsed_s must be >= 0, got {elapsed_s}")
        return (
            self.params.switch_leakage_w
            * voltage_scale**2
            * num_switches
            * elapsed_s
        )

    @property
    def average_hops(self) -> float:
        if self.bits_moved == 0:
            return 0.0
        return self.bit_hops / self.bits_moved

    @property
    def wireless_fraction(self) -> float:
        if self.bits_moved == 0:
            return 0.0
        return self.wireless_bits / self.bits_moved

    def reset(self) -> None:
        self.dynamic_joules = 0.0
        self.bits_moved = 0.0
        self.bit_hops = 0.0
        self.wireless_bits = 0.0
