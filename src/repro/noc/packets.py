"""Packet classes and sizing.

The memory system exchanges MOESI directory traffic (paper Sec. 7:
MOESI_CMP_directory, 64-byte lines, 32-bit flits):

* **control** -- requests, acks, invalidations: header + address;
* **data** -- cache-line transfers: header + 64-byte payload;
* **kv** -- bulk intermediate key/value transfers during Reduce/Merge,
  sized by the byte volume being moved.
"""

from __future__ import annotations

import enum
import math

from repro.utils.validation import check_positive

FLIT_BITS = 32
HEADER_FLITS = 1
CACHE_LINE_BYTES = 64


class PacketClass(enum.Enum):
    CONTROL = "control"
    DATA = "data"
    KV = "kv"


def packet_flits(packet_class: PacketClass, payload_bytes: float = 0.0) -> int:
    """Flit count of one packet of the given class."""
    if payload_bytes < 0:
        raise ValueError(f"payload_bytes must be >= 0, got {payload_bytes}")
    if packet_class is PacketClass.CONTROL:
        # Header flit + 32-bit address flit.
        return HEADER_FLITS + 1
    if packet_class is PacketClass.DATA:
        return HEADER_FLITS + CACHE_LINE_BYTES * 8 // FLIT_BITS
    if packet_class is PacketClass.KV:
        payload_flits = math.ceil(payload_bytes * 8 / FLIT_BITS)
        return HEADER_FLITS + max(1, payload_flits)
    raise ValueError(f"unknown packet class {packet_class!r}")


def packet_bits(packet_class: PacketClass, payload_bytes: float = 0.0) -> int:
    return packet_flits(packet_class, payload_bytes) * FLIT_BITS


def control_bits() -> int:
    return packet_bits(PacketClass.CONTROL)


def data_bits() -> int:
    return packet_bits(PacketClass.DATA)


def kv_stream_bits(total_bytes: float, chunk_bytes: float = 256.0) -> float:
    """Total bits to stream *total_bytes* of key/value data in
    *chunk_bytes* packets (headers included)."""
    check_positive("chunk_bytes", chunk_bytes)
    if total_bytes < 0:
        raise ValueError(f"total_bytes must be >= 0, got {total_bytes}")
    if total_bytes == 0:
        return 0.0
    packets = math.ceil(total_bytes / chunk_bytes)
    return total_bytes * 8 + packets * HEADER_FLITS * FLIT_BITS
