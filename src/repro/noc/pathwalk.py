"""Vectorized predecessor-chain walks for blocked dense-table builds.

The legacy dense builders walk one Python path per (src, dst) pair and
accumulate resource ids into Python lists -- at 256 cores that is ~65k
path walks and hundreds of MB of transient ``int`` objects.  The blocked
builders (:class:`repro.noc.dense.DenseLatencyModel` and
:meth:`repro.noc.network.FlowNetworkModel._flow_usage` with
``NocParams.dense_block_nodes`` set) instead walk every destination's
predecessor chain in lockstep per source, reading dense per-edge lookup
tables, so the transient state is a handful of length-``n`` arrays per
source block.
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from repro.noc.topology import LinkKind


def edge_resource_tables(model) -> Tuple[np.ndarray, np.ndarray]:
    """Dense per-edge resource-column lookups for *model*'s topology.

    Returns ``(link_col, chan_col)``, both ``(n, n)`` int32:
    ``link_col[u, v]`` is the directed-link resource column for the hop
    ``u -> v`` (``2 * index + direction``, the layout of
    :meth:`FlowNetworkModel.apply_resource_load`), ``chan_col[u, v]`` the
    shared wireless-channel column for wireless hops; ``-1`` where the
    nodes are not adjacent (or the hop is wired, for ``chan_col``).
    """
    topology = model.topology
    n = topology.num_nodes
    num_links = len(topology.links)
    link_col = np.full((n, n), -1, dtype=np.int32)
    chan_col = np.full((n, n), -1, dtype=np.int32)
    for index, link in enumerate(topology.links):
        link_col[link.a, link.b] = 2 * index
        link_col[link.b, link.a] = 2 * index + 1
        if link.kind is LinkKind.WIRELESS:
            column = 2 * num_links + link.channel
            chan_col[link.a, link.b] = column
            chan_col[link.b, link.a] = column
    return link_col, chan_col


def walk_steps(
    pred_row: np.ndarray, src: int, n: int
) -> Iterator[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Walk all destinations' routes back toward *src* in lockstep.

    Yields ``(dst, prev, cur)`` index arrays per step: for every
    still-walking destination ``dst``, the route's hop ``prev -> cur``
    (in forward, src-to-dst direction).  Iterating to exhaustion visits
    every hop of every route exactly once.
    """
    destinations = np.arange(n)
    current = destinations.copy()
    alive = current != src
    steps = 0
    while alive.any():
        steps += 1
        if steps > 2 * n:
            broken = destinations[alive]
            raise RuntimeError(
                f"predecessor chains from {src} do not terminate for "
                f"destinations {broken[:8].tolist()}..."
            )
        dst = destinations[alive]
        cur = current[alive]
        prev = pred_row[cur]
        if (prev < 0).any():
            raise RuntimeError(
                f"no route from {src} to {dst[prev < 0][:8].tolist()}"
            )
        yield dst, prev, cur
        current[alive] = prev
        alive = current != src


def assemble_blocked_csr(block_entries, n: int, block: int, num_resources: int):
    """Assemble the (n*n, num_resources) usage csr from per-block entries.

    *block_entries(start, end)* yields ``(rows, cols)`` int32 entry
    arrays for sources ``start <= src < end`` (rows are global pair
    indices ``src * n + dst``; duplicates sum, encoding multiplicity).
    Each block becomes its own csr and the result is a ``vstack``: no
    full-size coo intermediate (whose sort/dedup copies dominated peak
    memory) ever exists, so transient storage is bounded per block.
    Entries are int32 -- a pair index fits for any die below ~46k nodes.
    """
    from scipy.sparse import csr_matrix, vstack

    parts = []
    for start in range(0, n, block):
        end = min(start + block, n)
        rows, cols = block_entries(start, end)
        parts.append(
            csr_matrix(
                (
                    np.ones(len(rows), dtype=np.float32),
                    (rows - np.int32(start * n), cols),
                ),
                shape=((end - start) * n, num_resources),
            )
        )
    if not parts:
        return csr_matrix((n * n, num_resources), dtype=np.float32)
    return vstack(parts, format="csr")


def flow_usage_blocked(model, bulk: bool, block: int, num_resources: int):
    """Blocked build of :meth:`FlowNetworkModel._flow_usage`'s csr.

    Mirrors the legacy per-pair loop: one entry per directed-link hop
    (wire *and* wireless) plus one per wireless-channel crossing, with
    duplicates summed into multiplicities.
    """
    n = model.topology.num_nodes
    routing = model.bulk_routing if bulk else model.routing
    pred = routing.predecessor_matrix()
    link_col, chan_col = edge_resource_tables(model)

    def block_entries(start, end):
        rows_parts = []
        cols_parts = []
        for src in range(start, end):
            base = src * n
            for dst, prev, cur in walk_steps(pred[src], src, n):
                pair = (base + dst).astype(np.int32)
                rows_parts.append(pair)
                cols_parts.append(link_col[prev, cur])
                wireless = chan_col[prev, cur]
                on_channel = wireless >= 0
                if on_channel.any():
                    rows_parts.append(pair[on_channel])
                    cols_parts.append(wireless[on_channel])
        if not rows_parts:
            empty = np.empty(0, dtype=np.int32)
            return empty, empty
        return np.concatenate(rows_parts), np.concatenate(cols_parts)

    return assemble_blocked_csr(block_entries, n, block, num_resources)
