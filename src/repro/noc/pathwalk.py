"""Vectorized predecessor-chain walks for blocked dense-table builds.

The legacy dense builders walk one Python path per (src, dst) pair and
accumulate resource ids into Python lists -- at 256 cores that is ~65k
path walks and hundreds of MB of transient ``int`` objects.  The blocked
builders (:class:`repro.noc.dense.DenseLatencyModel` and
:meth:`repro.noc.network.FlowNetworkModel._flow_usage` with
``NocParams.dense_block_nodes`` set) instead walk every (src, dst)
route of a whole source block at once: :func:`walk_steps_block` advances
all still-walking routes one predecessor hop per step over dense
per-edge lookup tables, so the transient state is a handful of 1-D
arrays whose length shrinks as routes reach their sources.  Per block
that is ~diameter numpy steps instead of ~``block * diameter`` Python
loop iterations, and consumers issue one ``np.concatenate`` per block.

Per-route hop *order* is preserved: step ``k`` visits the ``k``-th hop
counted backward from each destination, exactly as the per-source
:func:`walk_steps` walk does, so float accumulations over the yielded
hops are bit-identical to the scalar builders.
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from repro.noc.topology import LinkKind


def edge_resource_tables(model) -> Tuple[np.ndarray, np.ndarray]:
    """Dense per-edge resource-column lookups for *model*'s topology.

    Returns ``(link_col, chan_col)``, both ``(n, n)`` int32:
    ``link_col[u, v]`` is the directed-link resource column for the hop
    ``u -> v`` (``2 * index + direction``, the layout of
    :meth:`FlowNetworkModel.apply_resource_load`), ``chan_col[u, v]`` the
    shared wireless-channel column for wireless hops; ``-1`` where the
    nodes are not adjacent (or the hop is wired, for ``chan_col``).
    """
    topology = model.topology
    n = topology.num_nodes
    num_links = len(topology.links)
    link_col = np.full((n, n), -1, dtype=np.int32)
    chan_col = np.full((n, n), -1, dtype=np.int32)
    for index, link in enumerate(topology.links):
        link_col[link.a, link.b] = 2 * index
        link_col[link.b, link.a] = 2 * index + 1
        if link.kind is LinkKind.WIRELESS:
            column = 2 * num_links + link.channel
            chan_col[link.a, link.b] = column
            chan_col[link.b, link.a] = column
    return link_col, chan_col


def _describe_cycle(pred_row: np.ndarray, src: int, dst: int, n: int) -> str:
    """Human-readable report of the cycle a predecessor walk fell into.

    Retraces the chain from *dst* toward *src*, recording every node
    until one repeats, and formats the closed cycle plus the hop count at
    which the walk entered it.
    """
    seen = {int(dst): 0}
    path = [int(dst)]
    node = int(dst)
    for _ in range(2 * n + 1):
        node = int(pred_row[node])
        if node < 0:
            return f"chain from {dst} hits unroutable node after {len(path)} hops"
        if node == src:
            return f"chain from {dst} terminates (no cycle found)"
        if node in seen:
            cycle = path[seen[node]:] + [node]
            arrows = " -> ".join(str(c) for c in reversed(cycle))
            return (
                f"route {src} -> {dst} enters the cycle [{arrows}] "
                f"{len(path) - len(cycle) + 1} hop(s) before {dst}"
            )
        seen[node] = len(path)
        path.append(node)
    return f"chain from {dst} exceeds {2 * n} hops without repeating"


def walk_steps(
    pred_row: np.ndarray, src: int, n: int
) -> Iterator[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Walk all destinations' routes back toward *src* in lockstep.

    Yields ``(dst, prev, cur)`` index arrays per step: for every
    still-walking destination ``dst``, the route's hop ``prev -> cur``
    (in forward, src-to-dst direction).  Iterating to exhaustion visits
    every hop of every route exactly once.

    The walk is validated eagerly: a predecessor cycle or an unroutable
    destination raises *before the first step is yielded*, so a consumer
    accumulating per-destination sums is never left holding a partially
    consumed walk.  The error names the offending route and the exact
    cycle the chain fell into.
    """
    steps = []
    destinations = np.arange(n)
    current = destinations.copy()
    alive = current != src
    count = 0
    while alive.any():
        count += 1
        dst = destinations[alive]
        cur = current[alive]
        if count > 2 * n:
            broken = int(dst[0])
            raise RuntimeError(
                f"predecessor chains from {src} do not terminate "
                f"({alive.sum()} destination(s) affected): "
                f"{_describe_cycle(pred_row, src, broken, n)}"
            )
        prev = pred_row[cur]
        if (prev < 0).any():
            missing = dst[prev < 0]
            raise RuntimeError(
                f"no route from {src} to destination(s) "
                f"{missing[:8].tolist()}"
                f"{'...' if len(missing) > 8 else ''}: predecessor chain "
                f"breaks {count} hop(s) before the destination"
            )
        steps.append((dst, prev, cur))
        current[alive] = prev
        alive = current != src
    return iter(steps)


def walk_steps_block(
    pred_rows: np.ndarray, srcs: np.ndarray, n: int
) -> Iterator[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]]:
    """Walk every (src, dst) route of a whole source block in lockstep.

    ``pred_rows`` holds the predecessor rows of the block's sources
    (``pred[srcs]``, shape ``(len(srcs), n)``).  Yields
    ``(rows, dst, prev, cur)`` per step, flattened over the block:
    ``rows`` indexes into *srcs*, and for each still-walking route the
    step contributes the hop ``prev -> cur`` (forward direction).  Step
    ``k`` carries the ``k``-th hop counted backward from each
    destination -- the same per-route order as :func:`walk_steps` -- and
    within one step every (src, dst) pair appears at most once, so
    consumers may accumulate with plain fancy-indexed ``+=``.

    Unlike the eager single-source walk, validation here is per step
    (materializing a block's full walk would defeat the bounded-memory
    contract of the blocked builders); a cycle still raises with the
    offending route spelled out.
    """
    srcs = np.asarray(srcs)
    block = len(srcs)
    rows = np.repeat(np.arange(block), n)
    dst = np.tile(np.arange(n), block)
    cur = dst.copy()
    keep = cur != srcs[rows]
    rows, dst, cur = rows[keep], dst[keep], cur[keep]
    steps = 0
    while rows.size:
        steps += 1
        if steps > 2 * n:
            row = int(rows[0])
            raise RuntimeError(
                f"predecessor chains do not terminate for {rows.size} "
                f"route(s) in source block {srcs[0]}..{srcs[-1]}: "
                f"{_describe_cycle(pred_rows[row], int(srcs[row]), int(dst[0]), n)}"
            )
        prev = pred_rows[rows, cur]
        if (prev < 0).any():
            bad = prev < 0
            pairs = list(zip(srcs[rows[bad]][:8].tolist(), dst[bad][:8].tolist()))
            raise RuntimeError(
                f"no route for (src, dst) pair(s) {pairs}"
                f"{'...' if bad.sum() > 8 else ''}: predecessor chain "
                f"breaks {steps} hop(s) before the destination"
            )
        yield rows, dst, prev, cur
        keep = prev != srcs[rows]
        rows, dst, cur = rows[keep], dst[keep], prev[keep]


def assemble_blocked_csr(block_entries, n: int, block: int, num_resources: int):
    """Assemble the (n*n, num_resources) usage csr from per-block entries.

    *block_entries(start, end)* yields ``(rows, cols)`` int32 entry
    arrays for sources ``start <= src < end`` (rows are global pair
    indices ``src * n + dst``; duplicates sum, encoding multiplicity).
    Each block becomes its own csr and the result is a ``vstack``: no
    full-size coo intermediate (whose sort/dedup copies dominated peak
    memory) ever exists, so transient storage is bounded per block.
    Entries are int32 -- a pair index fits for any die below ~46k nodes.
    """
    from scipy.sparse import csr_matrix, vstack

    parts = []
    for start in range(0, n, block):
        end = min(start + block, n)
        rows, cols = block_entries(start, end)
        parts.append(
            csr_matrix(
                (
                    np.ones(len(rows), dtype=np.float32),
                    (rows - np.int32(start * n), cols),
                ),
                shape=((end - start) * n, num_resources),
            )
        )
    if not parts:
        return csr_matrix((n * n, num_resources), dtype=np.float32)
    return vstack(parts, format="csr")


def flow_usage_blocked(model, bulk: bool, block: int, num_resources: int):
    """Blocked build of :meth:`FlowNetworkModel._flow_usage`'s csr.

    Mirrors the legacy per-pair loop: one entry per directed-link hop
    (wire *and* wireless) plus one per wireless-channel crossing, with
    duplicates summed into multiplicities.  The whole block walks in
    vectorized lockstep (:func:`walk_steps_block`), so entry assembly is
    ~diameter array appends and one concatenate per block.
    """
    n = model.topology.num_nodes
    routing = model.bulk_routing if bulk else model.routing
    pred = routing.predecessor_matrix()
    link_col, chan_col = edge_resource_tables(model)

    def block_entries(start, end):
        srcs = np.arange(start, end)
        base = (srcs * n).astype(np.int32)
        rows_parts = []
        cols_parts = []
        for rows, dst, prev, cur in walk_steps_block(pred[start:end], srcs, n):
            pair = base[rows] + dst.astype(np.int32)
            rows_parts.append(pair)
            cols_parts.append(link_col[prev, cur])
            wireless = chan_col[prev, cur]
            on_channel = wireless >= 0
            if on_channel.any():
                rows_parts.append(pair[on_channel])
                cols_parts.append(wireless[on_channel])
        if not rows_parts:
            empty = np.empty(0, dtype=np.int32)
            return empty, empty
        return np.concatenate(rows_parts), np.concatenate(cols_parts)

    return assemble_blocked_csr(block_entries, n, block, num_resources)
