"""Contention-aware flow model of the NoC.

The timing simulator needs, for millions of memory accesses and bulk
key-value transfers, the latency of moving packets between switches under
load.  Simulating every flit in Python is intractable, so the network is
modeled at the *flow* level, the standard analytic approach for NoC
design-space exploration:

* Every (source, destination) pair uses one deterministic path (XY on the
  mesh, weighted shortest path on the WiNoC).
* During each execution phase the simulator registers the phase's traffic
  as flows (bits/s); the model attributes them to link *directions* and
  to shared wireless channels.
* Per-hop latency = router pipeline (at the switch's VFI clock) + link
  traversal (wire clocked by the slower adjacent domain, or wireless
  propagation + token overhead) + an M/D/1-style queueing term driven by
  the resource's utilization + a synchronizer penalty when a packet
  crosses VFI clock domains.
* End-to-end packet latency = per-hop head latency summed over the path
  + payload serialization at the path's raw bottleneck line rate (the
  queueing term already accounts for contention; degrading the
  serialization rate too would double-count it).  Bulk *streams* instead
  see the utilization-degraded effective capacity
  (:meth:`FlowNetworkModel.path_capacity`).

VFI clocking matters twice: lowering a cluster's V/F slows its routers
(raising inter-cluster latency through it), and the mesh baseline pays it
on every multi-hop path -- which is exactly the effect the paper's WiNoC
sidesteps with single-hop long-range links.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.noc.energy import NocEnergyModel, NocEnergyParams
from repro.noc.routing import RoutingTable
from repro.noc.topology import Link, LinkKind, Topology
from repro.noc.wireless import WirelessSpec
from repro.telemetry import get_tracer
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class NocParams:
    """Router/link microarchitecture parameters (paper Sec. 7)."""

    flit_bits: int = 32
    router_pipeline_cycles: int = 4
    link_traversal_cycles: int = 1
    #: Mixed-clock FIFO penalty for crossing VFI domains.
    domain_sync_cycles: int = 4
    #: Utilization cap: beyond this the queueing term saturates.
    max_utilization: float = 0.95
    #: Port buffer depths (paper Sec. 7): wired ports hold 2 flits, WI
    #: ports 8.  A finite buffer bounds how long a flit can wait at a hop
    #: (M/D/1/K behaviour): at most ``depth - 1`` service times queue in
    #: front of it before backpressure stalls the upstream router instead.
    wire_buffer_flits: int = 2
    wi_buffer_flits: int = 8
    #: Opt-in blocked float32 construction of the dense all-pairs tables
    #: (:mod:`repro.noc.dense`, :mod:`repro.sim.memory`): sources are
    #: processed in blocks of this many nodes through vectorized
    #: predecessor-chain walks, with float32 storage, so 128/256-core
    #: dies stay within a bounded peak RSS.  ``None`` (the default)
    #: keeps the exact legacy float64 path -- the 64-core paper platform
    #: is bit-for-bit unchanged.
    dense_block_nodes: Optional[int] = None

    def __post_init__(self) -> None:
        check_positive("flit_bits", self.flit_bits)
        check_positive("router_pipeline_cycles", self.router_pipeline_cycles)
        check_positive("link_traversal_cycles", self.link_traversal_cycles)
        check_positive("domain_sync_cycles", self.domain_sync_cycles, allow_zero=True)
        check_positive("wire_buffer_flits", self.wire_buffer_flits)
        check_positive("wi_buffer_flits", self.wi_buffer_flits)
        if self.dense_block_nodes is not None:
            check_positive("dense_block_nodes", self.dense_block_nodes)
        if not 0.0 < self.max_utilization < 1.0:
            raise ValueError(
                f"max_utilization must be in (0,1), got {self.max_utilization}"
            )


class NetworkLoad:
    """Traffic bookkeeping: bits/s per directed link and per channel."""

    def __init__(self, num_links: int, num_channels: int):
        self.link_load = np.zeros((num_links, 2))
        self.channel_load = np.zeros(max(num_channels, 1))

    def clear(self) -> None:
        self.link_load[:] = 0.0
        self.channel_load[:] = 0.0


class FlowNetworkModel:
    """Latency/energy model of one interconnect instance.

    Parameters
    ----------
    topology, routing:
        The switch network and its deterministic routing.
    clusters:
        VFI cluster id per node (all zeros for a non-VFI platform).
    cluster_frequencies_hz:
        Clock of each cluster's switches (indexed by cluster id).
    cluster_voltages:
        Supply voltage per cluster (for static-power scaling).
    """

    def __init__(
        self,
        topology: Topology,
        routing: RoutingTable,
        clusters: Sequence[int],
        cluster_frequencies_hz: Sequence[float],
        cluster_voltages: Optional[Sequence[float]] = None,
        params: NocParams = NocParams(),
        wireless: WirelessSpec = WirelessSpec(),
        energy_params: NocEnergyParams = NocEnergyParams(),
        bulk_routing: Optional[RoutingTable] = None,
    ):
        if len(clusters) != topology.num_nodes:
            raise ValueError("clusters length does not match topology")
        self.topology = topology
        self.routing = routing
        self.clusters = list(clusters)
        self.cluster_frequencies_hz = list(cluster_frequencies_hz)
        for cid in self.clusters:
            if not 0 <= cid < len(self.cluster_frequencies_hz):
                raise ValueError(f"cluster {cid} has no frequency assigned")
        self.cluster_voltages = (
            list(cluster_voltages)
            if cluster_voltages is not None
            else [1.0] * len(self.cluster_frequencies_hz)
        )
        self.params = params
        self.wireless = wireless
        self.energy = NocEnergyModel(energy_params)
        self._link_index: Dict[frozenset, int] = {
            link.key: index for index, link in enumerate(topology.links)
        }
        # Wireless channel ids index directly into the shared channel-load
        # table, so an out-of-range id would either IndexError deep inside
        # add_flow mid-simulation or (with num_channels == 0, where the
        # table keeps a single placeholder row) silently alias every
        # channel onto row 0.  Fail at construction instead.
        for link in topology.links:
            if link.kind is not LinkKind.WIRELESS:
                continue
            if not 0 <= link.channel < wireless.num_channels:
                raise ValueError(
                    f"wireless link {link.a}-{link.b} uses channel "
                    f"{link.channel}, but the wireless spec provides "
                    f"{wireless.num_channels} channel(s) "
                    f"(valid ids: 0..{wireless.num_channels - 1})"
                )
        self._wireless_channels = sorted(
            {
                link.channel
                for link in topology.links
                if link.kind is LinkKind.WIRELESS
            }
        )
        self.load = NetworkLoad(len(topology.links), wireless.num_channels)
        self._node_freq = np.array(
            [self.cluster_frequencies_hz[cid] for cid in self.clusters]
        )
        #: Routing for bulk (streaming) transfers.  Token-MAC wireless
        #: channels are latency shortcuts, not bandwidth: a 16 Gbps shared
        #: medium is much slower than a wormhole wire path for large
        #: streams, so bulk key-value traffic uses a wire-preferring route
        #: (message-class routing, as with protocol-class virtual
        #: channels).  Defaults to the latency routing (mesh platforms).
        self.bulk_routing = bulk_routing or routing
        # Path caches: (src, dst) -> (links, directions)
        self._path_cache: Dict[Tuple[int, int], Tuple[List[Link], List[int]]] = {}
        self._bulk_path_cache: Dict[Tuple[int, int], Tuple[List[Link], List[int]]] = {}
        #: Cross-instance cache for load-independent precomputes (batch
        #: flow-usage matrices, dense latency tables, pairwise energy).
        #: :meth:`repro.sim.platform.Platform.build_network` hands every
        #: rebuilt network of one platform the same dict, so the O(n^2)
        #: path walks behind those tables run once per platform instead of
        #: once per simulation.  Only valid across networks with identical
        #: fabric and clocks; a standalone network keeps a private dict.
        self.static_cache: Dict[object, object] = {}
        # Telemetry: captured at construction (install the tracer first).
        # ``trace_label`` names this interconnect instance in counters and
        # samples; the simulator overwrites it with the platform name.
        self._tracer = get_tracer()
        self.trace_label = "noc"

    # ------------------------------------------------------------------ #
    # flow registration
    # ------------------------------------------------------------------ #

    def reset_flows(self) -> None:
        self.load.clear()

    def add_flow(
        self, src: int, dst: int, bits_per_s: float, bulk: bool = False
    ) -> None:
        """Register sustained traffic from *src* to *dst*."""
        if bits_per_s < 0:
            raise ValueError(f"bits_per_s must be >= 0, got {bits_per_s}")
        if src == dst or bits_per_s == 0:
            return
        for link, direction in zip(*self._path(src, dst, bulk=bulk)):
            index = self._link_index[link.key]
            self.load.link_load[index, direction] += bits_per_s
            if link.kind is LinkKind.WIRELESS:
                self.load.channel_load[link.channel] += bits_per_s

    def add_flows(
        self,
        src: Sequence[int],
        dst: Sequence[int],
        bits_per_s: Sequence[float],
        bulk: bool = False,
    ) -> None:
        """Batch :meth:`add_flow`: register many flows in one mat-vec.

        The per-pair rates are accumulated into a dense (src, dst) rate
        vector and scattered onto directed links and wireless channels
        through a precomputed sparse pair -> resource usage matrix, so the
        cost is independent of path lengths and flow count beyond the
        initial accumulation.  Produces the same loads as the equivalent
        sequence of ``add_flow`` calls.
        """
        src = np.asarray(src, dtype=np.intp)
        dst = np.asarray(dst, dtype=np.intp)
        rate = np.asarray(bits_per_s, dtype=float)
        if not (src.shape == dst.shape == rate.shape):
            raise ValueError(
                f"src/dst/bits_per_s shapes differ: "
                f"{src.shape}, {dst.shape}, {rate.shape}"
            )
        if rate.size == 0:
            return
        if (rate < 0).any():
            raise ValueError("bits_per_s must be >= 0")
        n = self.topology.num_nodes
        if src.size and not (
            (0 <= src).all() and (src < n).all() and (0 <= dst).all() and (dst < n).all()
        ):
            raise ValueError(f"src/dst node ids must be in [0, {n})")
        active = (src != dst) & (rate > 0)
        if not active.any():
            return
        rate_by_pair = np.zeros(n * n)
        np.add.at(rate_by_pair, src[active] * n + dst[active], rate[active])
        self.apply_resource_load(self._flow_usage(bulk).T @ rate_by_pair)

    def apply_resource_load(self, load_per_resource: np.ndarray) -> None:
        """Add a per-resource load vector (bits/s) onto the current loads.

        The resource layout matches :meth:`_flow_usage` columns: directed
        link ``i`` occupies columns ``2*i`` / ``2*i + 1``, wireless channel
        ``c`` occupies column ``2 * num_links + c``.
        """
        num_links = len(self.topology.links)
        num_channels = self.load.channel_load.shape[0]
        expected = 2 * num_links + num_channels
        if load_per_resource.shape != (expected,):
            raise ValueError(
                f"expected {expected} resources, got {load_per_resource.shape}"
            )
        self.load.link_load += load_per_resource[: 2 * num_links].reshape(
            num_links, 2
        )
        self.load.channel_load += load_per_resource[2 * num_links :]

    def _flow_usage(self, bulk: bool = False):
        """Sparse (n*n, resources) pair -> resource usage counts.

        Row ``src * n + dst`` counts how often that pair's path crosses
        each directed link (wire *and* wireless, mirroring ``add_flow``'s
        per-link bookkeeping) and each shared wireless channel.  Built
        once per message class and shared through :attr:`static_cache`.
        """
        from scipy.sparse import csr_matrix

        key = (
            "flow_usage",
            bulk,
            self.topology.epoch,
            len(self.topology.links),
        )
        usage = self.static_cache.get(key)
        if usage is not None:
            return usage
        n = self.topology.num_nodes
        num_links = len(self.topology.links)
        num_channels = self.load.channel_load.shape[0]
        block = self.params.dense_block_nodes
        if block is not None:
            # Blocked build: vectorized predecessor-chain walks with
            # float32 data, no per-pair Python path materialization.
            from repro.noc.pathwalk import flow_usage_blocked

            usage = flow_usage_blocked(
                self, bulk, block, 2 * num_links + num_channels
            )
            self.static_cache[key] = usage
            return usage
        rows: List[int] = []
        cols: List[int] = []
        for src in range(n):
            for dst in range(n):
                if src == dst:
                    continue
                pair = src * n + dst
                for link, direction in zip(*self._path(src, dst, bulk=bulk)):
                    index = self._link_index[link.key]
                    rows.append(pair)
                    cols.append(2 * index + direction)
                    if link.kind is LinkKind.WIRELESS:
                        rows.append(pair)
                        cols.append(2 * num_links + link.channel)
        usage = csr_matrix(
            (np.ones(len(rows)), (rows, cols)),
            shape=(n * n, 2 * num_links + num_channels),
        )
        self.static_cache[key] = usage
        return usage

    # ------------------------------------------------------------------ #
    # latency
    # ------------------------------------------------------------------ #

    def latency(
        self, src: int, dst: int, payload_bits: float, bulk: bool = False
    ) -> float:
        """Latency (s) of one packet of *payload_bits* from *src* to *dst*."""
        if payload_bits < 0:
            raise ValueError(f"payload_bits must be >= 0, got {payload_bits}")
        if src == dst:
            # Local port: one router traversal.
            return self.params.router_pipeline_cycles / self._node_freq[src]
        params = self.params
        head = 0.0
        bottleneck = np.inf
        links, directions = self._path(src, dst, bulk=bulk)
        node = src
        for link, direction in zip(links, directions):
            peer = link.other(node)
            f_node = self._node_freq[node]
            head += params.router_pipeline_cycles / f_node
            index = self._link_index[link.key]
            if link.kind is LinkKind.WIRELESS:
                capacity = self.wireless.bandwidth_bps
                rho = min(
                    self.load.channel_load[link.channel] / capacity,
                    params.max_utilization,
                )
                service = params.flit_bits / capacity
                head += self.wireless.propagation_s + self.wireless.token_overhead_s
                buffer_flits = params.wi_buffer_flits
            else:
                f_link = min(f_node, self._node_freq[peer])
                capacity = params.flit_bits * f_link / params.link_traversal_cycles
                rho = min(
                    self.load.link_load[index, direction] / capacity,
                    params.max_utilization,
                )
                service = params.link_traversal_cycles / f_link
                head += service
                buffer_flits = params.wire_buffer_flits
            # M/D/1 waiting time, bounded by the port's finite buffer
            # (at most depth-1 flits can be queued in front).
            wait = min(
                service * rho / (2.0 * (1.0 - rho)),
                (buffer_flits - 1) * service,
            )
            head += wait
            if link.kind is LinkKind.WIRELESS and self._tracer.enabled:
                # Channel-access wait: token acquisition + queueing.
                self._tracer.histogram_record(
                    f"noc.token_wait_s/{self.trace_label}",
                    self.wireless.token_overhead_s + wait,
                )
            if self.clusters[node] != self.clusters[peer]:
                head += params.domain_sync_cycles / min(
                    f_node, self._node_freq[peer]
                )
            bottleneck = min(bottleneck, capacity)
            node = peer
        # Ejection pipeline at the destination router.
        head += params.router_pipeline_cycles / self._node_freq[dst]
        return head + payload_bits / bottleneck

    def latency_matrix(self, payload_bits: float) -> np.ndarray:
        """All-pairs packet latency under the current load."""
        n = self.topology.num_nodes
        matrix = np.zeros((n, n))
        for src in range(n):
            for dst in range(n):
                matrix[src, dst] = self.latency(src, dst, payload_bits)
        return matrix

    def path_capacity(self, src: int, dst: int, bulk: bool = False) -> float:
        """Effective bottleneck throughput (bits/s) of the (src,dst) path."""
        if src == dst:
            return np.inf
        params = self.params
        bottleneck = np.inf
        links, directions = self._path(src, dst, bulk=bulk)
        node = src
        for link, direction in zip(links, directions):
            peer = link.other(node)
            index = self._link_index[link.key]
            if link.kind is LinkKind.WIRELESS:
                capacity = self.wireless.bandwidth_bps
                rho = min(
                    self.load.channel_load[link.channel] / capacity,
                    params.max_utilization,
                )
            else:
                f_link = min(self._node_freq[node], self._node_freq[peer])
                capacity = params.flit_bits * f_link / params.link_traversal_cycles
                rho = min(
                    self.load.link_load[index, direction] / capacity,
                    params.max_utilization,
                )
            bottleneck = min(bottleneck, capacity * (1.0 - rho))
            node = peer
        return bottleneck

    # ------------------------------------------------------------------ #
    # energy / statistics
    # ------------------------------------------------------------------ #

    def record_transfer(
        self, src: int, dst: int, bits: float, bulk: bool = False
    ) -> float:
        """Account the energy of moving *bits* from *src* to *dst*."""
        if src == dst:
            return 0.0
        links, _ = self._path(src, dst, bulk=bulk)
        if self._tracer.enabled:
            self._count_flits(links, bits)
        return self.energy.transfer_energy(links, bits)

    def _count_flits(self, links: Sequence[Link], bits: float) -> None:
        """Telemetry: per-link and per-kind flit counters for a transfer."""
        tracer = self._tracer
        label = self.trace_label
        flits = -(-bits // self.params.flit_bits)  # ceil on floats
        for link in links:
            tracer.counter_add(
                "noc.link_flits", flits, key=f"{label}:{link.a}-{link.b}"
            )
            if link.kind is LinkKind.WIRELESS:
                tracer.counter_add("noc.flits.wireless", flits, key=label)
            else:
                tracer.counter_add("noc.flits.wired", flits, key=label)

    def static_energy(self, elapsed_s: float) -> float:
        """Switch leakage over *elapsed_s*, per-cluster voltage scaled."""
        nominal_v = max(self.cluster_voltages)
        total = 0.0
        for node in range(self.topology.num_nodes):
            scale = self.cluster_voltages[self.clusters[node]] / nominal_v
            total += self.energy.static_energy(1, elapsed_s, scale)
        return total

    def hop_count(self, src: int, dst: int) -> int:
        return self.routing.hop_count(src, dst)

    def sample_channel_occupancy(self, ts_s: float) -> None:
        """Telemetry: one offered-load sample per wireless channel.

        The simulator calls this after registering a phase's flows, so a
        recorded trace carries a counter track per shared mm-wave channel
        showing its offered load as a fraction of the channel bandwidth
        (paper Fig. 6's wireless-utilization comparison, over time).
        """
        tracer = self._tracer
        if not tracer.enabled or not self._wireless_channels:
            return
        bandwidth = self.wireless.bandwidth_bps
        for channel in self._wireless_channels:
            tracer.sample(
                f"channel {channel} occupancy",
                ts_s,
                float(self.load.channel_load[channel]) / bandwidth,
                pid=self.trace_label,
                tid=int(channel),
                series="fraction",
            )

    # ------------------------------------------------------------------ #

    def _path(
        self, src: int, dst: int, bulk: bool = False
    ) -> Tuple[List[Link], List[int]]:
        cache = self._bulk_path_cache if bulk else self._path_cache
        key = (src, dst)
        cached = cache.get(key)
        if cached is not None:
            return cached
        routing = self.bulk_routing if bulk else self.routing
        nodes = routing.path(src, dst)
        links: List[Link] = []
        directions: List[int] = []
        for a, b in zip(nodes, nodes[1:]):
            link = self.topology.find_link(a, b)
            links.append(link)
            directions.append(0 if a == link.a else 1)
        cache[key] = (links, directions)
        return links, directions
