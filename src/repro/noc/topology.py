"""NoC topology representation.

A :class:`Topology` is a set of switches (one per core, laid out on a
rectangular grid) and bidirectional :class:`Link` objects.  Links are
either planar wires (length taken from the grid geometry) or mm-wave
wireless shortcuts (single-hop regardless of distance).

The paper's platform is an 8x8 grid of 64 cores; the mesh baseline links
grid neighbours, the WiNoC topology is built by
:mod:`repro.noc.smallworld` and :mod:`repro.noc.wireless`.
"""

from __future__ import annotations

import enum
import itertools
import math
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.utils.validation import check_positive

#: Monotonic epoch source for mutated topologies.  Fresh-built topologies
#: keep epoch 0; every derived topology (``with_links`` /
#: ``without_links``) draws a new process-unique epoch so static caches
#: keyed on ``(bulk, epoch, len(links))`` can never alias tables computed
#: for a different link set.
_EPOCH = itertools.count(1)


class LinkKind(enum.Enum):
    WIRE = "wire"
    WIRELESS = "wireless"


@dataclass(frozen=True)
class GridGeometry:
    """Physical die layout: switches on a uniform grid.

    ``pitch_mm`` is the center-to-center spacing of adjacent tiles; a
    64-core die at 65 nm is ~20 mm on a side, giving a 2.5 mm pitch.
    """

    columns: int
    rows: int
    pitch_mm: float = 2.5

    def __post_init__(self) -> None:
        check_positive("columns", self.columns)
        check_positive("rows", self.rows)
        check_positive("pitch_mm", self.pitch_mm)

    @property
    def num_nodes(self) -> int:
        return self.columns * self.rows

    def coordinates(self, node: int) -> Tuple[int, int]:
        """(column, row) of *node* in row-major order."""
        self._check_node(node)
        return node % self.columns, node // self.columns

    def node_at(self, column: int, row: int) -> int:
        if not (0 <= column < self.columns and 0 <= row < self.rows):
            raise ValueError(f"({column}, {row}) outside {self.columns}x{self.rows}")
        return row * self.columns + column

    def distance_mm(self, a: int, b: int) -> float:
        """Euclidean wire distance between two switches."""
        ax, ay = self.coordinates(a)
        bx, by = self.coordinates(b)
        return math.hypot(ax - bx, ay - by) * self.pitch_mm

    def manhattan_hops(self, a: int, b: int) -> int:
        ax, ay = self.coordinates(a)
        bx, by = self.coordinates(b)
        return abs(ax - bx) + abs(ay - by)

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} outside [0, {self.num_nodes})")


@dataclass(frozen=True)
class Link:
    """Bidirectional link between two switches."""

    a: int
    b: int
    kind: LinkKind = LinkKind.WIRE
    length_mm: float = 0.0
    #: Wireless channel index (0..2); ``None`` for wires.
    channel: Optional[int] = None

    def __post_init__(self) -> None:
        if self.a == self.b:
            raise ValueError(f"self-link at node {self.a}")
        if self.kind is LinkKind.WIRELESS and self.channel is None:
            raise ValueError("wireless links must carry a channel index")
        if self.kind is LinkKind.WIRE and self.channel is not None:
            raise ValueError("wire links must not carry a channel index")

    @property
    def key(self) -> FrozenSet[int]:
        return frozenset((self.a, self.b))

    def other(self, node: int) -> int:
        if node == self.a:
            return self.b
        if node == self.b:
            return self.a
        raise ValueError(f"node {node} not on link {self.a}-{self.b}")


@dataclass
class Topology:
    """A named switch network over a grid geometry."""

    name: str
    geometry: GridGeometry
    links: List[Link] = field(default_factory=list)
    #: Mutation epoch: 0 for fresh-built topologies, process-unique for
    #: every derived one.  Static-table caches key on it, so removing or
    #: adding links invalidates cached hop/energy tables.
    epoch: int = 0

    def __post_init__(self) -> None:
        self._adjacency: Optional[Dict[int, List[Link]]] = None
        seen = set()
        for link in self.links:
            self.geometry._check_node(link.a)
            self.geometry._check_node(link.b)
            if link.key in seen:
                raise ValueError(f"duplicate link {sorted(link.key)}")
            seen.add(link.key)

    @property
    def num_nodes(self) -> int:
        return self.geometry.num_nodes

    def adjacency(self) -> Dict[int, List[Link]]:
        if self._adjacency is None:
            adjacency: Dict[int, List[Link]] = {
                node: [] for node in range(self.num_nodes)
            }
            for link in self.links:
                adjacency[link.a].append(link)
                adjacency[link.b].append(link)
            self._adjacency = adjacency
        return self._adjacency

    def degree(self, node: int) -> int:
        """Switch degree excluding the local core port."""
        return len(self.adjacency()[node])

    def average_degree(self) -> float:
        return 2.0 * len(self.links) / self.num_nodes

    def neighbors(self, node: int) -> List[int]:
        return [link.other(node) for link in self.adjacency()[node]]

    def is_connected(self) -> bool:
        if self.num_nodes == 0:
            return True
        seen = {0}
        frontier = [0]
        adjacency = self.adjacency()
        while frontier:
            node = frontier.pop()
            for link in adjacency[node]:
                peer = link.other(node)
                if peer not in seen:
                    seen.add(peer)
                    frontier.append(peer)
        return len(seen) == self.num_nodes

    def with_links(self, extra: Iterable[Link], name: Optional[str] = None) -> "Topology":
        """New topology with *extra* links appended."""
        return Topology(
            name=name or self.name,
            geometry=self.geometry,
            links=list(self.links) + list(extra),
            epoch=next(_EPOCH),
        )

    def without_links(
        self,
        keys: Iterable[FrozenSet[int]],
        name: Optional[str] = None,
    ) -> "Topology":
        """New topology with every link whose :attr:`Link.key` is in
        *keys* removed (fault injection: failed wires / lost channels).

        The derived topology carries a fresh mutation epoch, so shared
        static caches recompute hop and energy tables instead of reusing
        those of the intact fabric.
        """
        drop = set(keys)
        missing = drop - {link.key for link in self.links}
        if missing:
            raise KeyError(
                f"links not in topology {self.name!r}: "
                f"{sorted(sorted(k) for k in missing)}"
            )
        return Topology(
            name=name or self.name,
            geometry=self.geometry,
            links=[link for link in self.links if link.key not in drop],
            epoch=next(_EPOCH),
        )

    def wireless_links(self) -> List[Link]:
        return [link for link in self.links if link.kind is LinkKind.WIRELESS]

    def find_link(self, a: int, b: int) -> Link:
        for link in self.adjacency()[a]:
            if link.other(a) == b:
                return link
        raise KeyError(f"no link between {a} and {b}")


def build_mesh(geometry: GridGeometry, name: str = "mesh") -> Topology:
    """Baseline 2D mesh: links between grid neighbours."""
    links: List[Link] = []
    for row in range(geometry.rows):
        for column in range(geometry.columns):
            node = geometry.node_at(column, row)
            if column + 1 < geometry.columns:
                east = geometry.node_at(column + 1, row)
                links.append(
                    Link(node, east, LinkKind.WIRE, geometry.distance_mm(node, east))
                )
            if row + 1 < geometry.rows:
                south = geometry.node_at(column, row + 1)
                links.append(
                    Link(node, south, LinkKind.WIRE, geometry.distance_mm(node, south))
                )
    return Topology(name=name, geometry=geometry, links=links)
