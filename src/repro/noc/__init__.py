"""Network-on-chip substrate: topologies, routing, wireless links, timing
and energy models.

Two interconnects are modeled, following the paper:

* the baseline **mesh** NoC (multi-hop, wormhole, XY routing);
* the **WiNoC**: a small-world wireline fabric built with a power-law
  wiring-cost model (``<k> = 4`` average connections per switch, a
  ``kmax`` port cap, and the VFI-aware ``(<k_intra>, <k_inter>)`` split of
  Sec. 5), overlaid with 12 mm-wave wireless interfaces in 3
  non-overlapping token-MAC channels (Sec. 6).

Timing uses a contention-aware flow model: per-phase traffic flows are
assigned to shortest paths, per-link utilization produces M/D/1-style
queueing delay on top of per-hop router/link latency, and wireless
channels are shared serialized resources with token overhead.  Energy
uses per-flit switch/wire/wireless numbers from the authors' companion
65-nm characterization (Deb et al., IEEE TC 2013).
"""

from repro.noc.energy import NocEnergyModel, NocEnergyParams
from repro.noc.network import FlowNetworkModel, NetworkLoad
from repro.noc.packets import PacketClass, packet_flits
from repro.noc.placement import (
    center_wireless_placement,
    optimize_wireless_placement,
)
from repro.noc.routing import RoutingTable, build_routing_table, xy_route
from repro.noc.smallworld import SmallWorldConfig, build_small_world
from repro.noc.topology import (
    GridGeometry,
    Link,
    LinkKind,
    Topology,
    build_mesh,
)
from repro.noc.visualize import (
    describe_topology,
    render_die_map,
    render_link_histogram,
    render_vf_map,
)
from repro.noc.wireless import WirelessChannel, WirelessSpec, assign_wireless_links

__all__ = [
    "GridGeometry",
    "Link",
    "LinkKind",
    "Topology",
    "build_mesh",
    "SmallWorldConfig",
    "build_small_world",
    "WirelessSpec",
    "WirelessChannel",
    "assign_wireless_links",
    "RoutingTable",
    "build_routing_table",
    "xy_route",
    "FlowNetworkModel",
    "NetworkLoad",
    "PacketClass",
    "packet_flits",
    "NocEnergyModel",
    "NocEnergyParams",
    "center_wireless_placement",
    "optimize_wireless_placement",
    "describe_topology",
    "render_die_map",
    "render_link_histogram",
    "render_vf_map",
]
