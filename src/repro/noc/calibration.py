"""Congestion-aware wireless routing calibration.

The deterministic router prefers a wireless hop whenever it beats the
wire path at the nominal weight -- but a token-MAC channel is a shared
16 Gbps medium, and a data-intensive MapReduce phase can offer far more
long-range traffic than three channels can carry.  Real WiNoCs handle
this with congestion-aware arbitration/routing; statically, the same
effect is achieved by *calibrating* the wireless routing weight per
channel against the application's offered load:

1. route with the current weights and assign the estimated traffic;
2. compute each channel's utilization;
3. raise the weight of any channel loaded beyond the target utilization
   (fewer pairs then choose it) and repeat.

The fixed point keeps every wireless channel below the target load, so
the wireless links serve the longest paths -- where they save the most
latency and energy -- instead of melting down under uniform traffic.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.noc.network import FlowNetworkModel, NocParams
from repro.noc.routing import RoutingTable, build_routing_table
from repro.noc.topology import Link, LinkKind, Topology
from repro.noc.wireless import WirelessSpec
from repro.utils.validation import check_in_range, check_positive


def make_weight_fn(channel_weights: Dict[int, float]):
    """Routing weight function with per-channel wireless weights.

    Wire links use the library's default length-aware weight
    (:func:`repro.noc.routing.default_link_weight`)."""
    from repro.noc.routing import default_link_weight

    def weight(link: Link) -> float:
        if link.kind is LinkKind.WIRELESS:
            return channel_weights.get(link.channel, 1.2)
        return default_link_weight(link)

    return weight


def channel_utilizations(
    topology: Topology,
    routing: RoutingTable,
    clusters: Sequence[int],
    cluster_frequencies_hz: Sequence[float],
    traffic_rate_bps: np.ndarray,
    wireless: WirelessSpec,
    params: NocParams = NocParams(),
) -> np.ndarray:
    """Per-channel utilization under *traffic_rate_bps* with *routing*."""
    model = FlowNetworkModel(
        topology=topology,
        routing=routing,
        clusters=list(clusters),
        cluster_frequencies_hz=list(cluster_frequencies_hz),
        params=params,
        wireless=wireless,
    )
    n = topology.num_nodes
    if traffic_rate_bps.shape != (n, n):
        raise ValueError(
            f"traffic {traffic_rate_bps.shape} does not match {n} nodes"
        )
    for src in range(n):
        for dst in range(n):
            rate = traffic_rate_bps[src, dst]
            if rate > 0 and src != dst:
                model.add_flow(src, dst, rate)
    return model.load.channel_load / wireless.bandwidth_bps


def calibrate_wireless_routing(
    topology: Topology,
    clusters: Sequence[int],
    cluster_frequencies_hz: Sequence[float],
    traffic_rate_bps: Optional[np.ndarray],
    wireless: WirelessSpec = WirelessSpec(),
    target_utilization: float = 0.7,
    initial_weight: float = 1.2,
    max_iterations: int = 8,
    max_weight: float = 64.0,
) -> RoutingTable:
    """Routing table with wireless weights tuned to the offered load.

    With ``traffic_rate_bps=None`` (no load estimate) the initial weight
    is used unchanged.
    """
    check_in_range("target_utilization", target_utilization, 0.0, 1.0, inclusive=False)
    check_positive("initial_weight", initial_weight)
    weights: Dict[int, float] = {
        channel: initial_weight for channel in range(wireless.num_channels)
    }
    routing = build_routing_table(topology, weight=make_weight_fn(weights))
    if traffic_rate_bps is None:
        return routing
    for _ in range(max_iterations):
        rho = channel_utilizations(
            topology,
            routing,
            clusters,
            cluster_frequencies_hz,
            traffic_rate_bps,
            wireless,
        )
        overloaded = rho > target_utilization
        if not overloaded.any():
            break
        for channel in np.nonzero(overloaded)[0]:
            scale = (rho[channel] / target_utilization) ** 0.7
            weights[int(channel)] = min(
                weights[int(channel)] * max(scale, 1.05), max_weight
            )
        routing = build_routing_table(topology, weight=make_weight_fn(weights))
    return routing
