"""Small-world wireline topology construction (paper Sec. 5).

The WiNoC's wireline fabric follows a power-law wiring-cost model
(Petermann & De Los Rios, 2005): the probability of a link between two
switches decays with their physical separation, ``P(a, b) ~ d(a, b)^-alpha``.
The paper constrains the construction for VFI platforms:

* the average switch degree ``<k>`` is 4, so the WiNoC "does not introduce
  any additional switch overhead with respect to a conventional mesh";
* a hard per-switch port cap ``kmax`` keeps switches realistic;
* ``<k>`` is split into ``<k_intra>`` (links inside each VFI cluster,
  guaranteeing cluster connectivity) and ``<k_inter>`` (links between
  clusters);
* the number of inter-cluster links between clusters *p* and *q* is
  proportional to the share of inter-cluster traffic the (p, q) pair
  carries.

The evaluated configuration is ``(k_intra, k_inter) = (3, 1)``; the
``(2, 2)`` alternative is kept for the Sec. 7.2 sweep.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.noc.topology import GridGeometry, Link, LinkKind, Topology
from repro.utils.rng import SeedLike, derive_rng
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class SmallWorldConfig:
    """Parameters of the constrained small-world construction.

    Separate wiring-cost exponents govern the two link populations:
    intra-cluster links are strongly distance-penalized (``alpha_intra``)
    so each island keeps mesh-like local connectivity for its
    neighbourhood traffic, while inter-cluster links use a weaker penalty
    (``alpha_inter``) so they act as the long-range shortcuts that give
    the topology its small-world character.
    """

    k_intra: float = 3.0
    k_inter: float = 1.0
    kmax: int = 7
    alpha_intra: float = 3.0
    alpha_inter: float = 1.8

    def __post_init__(self) -> None:
        check_positive("k_intra", self.k_intra)
        check_positive("k_inter", self.k_inter)
        check_positive("kmax", self.kmax)
        check_positive("alpha_intra", self.alpha_intra)
        check_positive("alpha_inter", self.alpha_inter)

    @property
    def alpha(self) -> float:
        """Backward-compatible average exponent (reporting only)."""
        return 0.5 * (self.alpha_intra + self.alpha_inter)

    @property
    def k_total(self) -> float:
        return self.k_intra + self.k_inter

    def sized_for(self, num_nodes: int, num_islands: int) -> "SmallWorldConfig":
        """Config sized for a die: the inter-island link budget
        (``num_nodes * k_inter / 2``) must cover every island pair, so a
        many-island die on a small mesh raises ``k_inter`` just enough to
        allocate at least one link per pair.  The paper's 64-core,
        4-island die (32 links for 6 pairs) returns ``self`` unchanged.
        """
        check_positive("num_nodes", num_nodes)
        check_positive("num_islands", num_islands)
        pairs = num_islands * (num_islands - 1) // 2
        if round(num_nodes * self.k_inter / 2.0) >= pairs:
            return self
        from dataclasses import replace

        return replace(self, k_inter=2.0 * pairs / num_nodes)


def build_small_world(
    geometry: GridGeometry,
    clusters: Sequence[int],
    inter_cluster_traffic: Optional[np.ndarray] = None,
    config: SmallWorldConfig = SmallWorldConfig(),
    seed: SeedLike = None,
    name: str = "small-world",
) -> Topology:
    """Build the VFI-constrained small-world wireline topology.

    Parameters
    ----------
    geometry:
        Die layout (8x8 for the paper's platform).
    clusters:
        Cluster id per node (``clusters[node] -> cluster``).
    inter_cluster_traffic:
        Symmetric ``m x m`` matrix of traffic between clusters; link counts
        between cluster pairs are allocated proportionally.  ``None`` means
        uniform allocation.
    """
    if len(clusters) != geometry.num_nodes:
        raise ValueError(
            f"clusters has {len(clusters)} entries for {geometry.num_nodes} nodes"
        )
    rng = derive_rng(seed)
    cluster_ids = sorted(set(clusters))
    members: Dict[int, List[int]] = {
        cid: [n for n, c in enumerate(clusters) if c == cid] for cid in cluster_ids
    }
    for cid, nodes in members.items():
        if len(nodes) < 2:
            raise ValueError(f"cluster {cid} has fewer than 2 nodes")

    degrees = np.zeros(geometry.num_nodes, dtype=int)
    links: List[Link] = []
    existing: set = set()

    def try_add(a: int, b: int) -> bool:
        key = frozenset((a, b))
        if a == b or key in existing:
            return False
        if degrees[a] >= config.kmax or degrees[b] >= config.kmax:
            return False
        links.append(Link(a, b, LinkKind.WIRE, geometry.distance_mm(a, b)))
        existing.add(key)
        degrees[a] += 1
        degrees[b] += 1
        return True

    # ---------------- intra-cluster construction ---------------------- #
    for cid in cluster_ids:
        nodes = members[cid]
        target_links = int(round(len(nodes) * config.k_intra / 2.0))
        if target_links < len(nodes) - 1:
            raise ValueError(
                f"k_intra={config.k_intra} cannot connect a cluster of "
                f"{len(nodes)} nodes (needs >= {2 * (len(nodes) - 1) / len(nodes):.3f})"
            )
        # Spanning tree first (guaranteed connectivity), power-law biased.
        order = list(nodes)
        rng.shuffle(order)
        connected = [order[0]]
        for node in order[1:]:
            weights = np.array(
                [
                    _wiring_weight(geometry, node, peer, config.alpha_intra)
                    for peer in connected
                ]
            )
            for peer in _weighted_order(connected, weights, rng):
                if try_add(node, peer):
                    break
            else:
                raise RuntimeError(
                    f"could not attach node {node} within cluster {cid} "
                    f"(kmax={config.kmax} too tight)"
                )
            connected.append(node)
        # Remaining intra links by power-law sampling.
        _add_sampled_links(
            geometry,
            [(a, b) for a, b in itertools.combinations(nodes, 2)],
            target_links - (len(nodes) - 1),
            config.alpha_intra,
            rng,
            try_add,
        )

    # ---------------- inter-cluster construction ---------------------- #
    total_inter = int(round(geometry.num_nodes * config.k_inter / 2.0))
    pair_list = list(itertools.combinations(cluster_ids, 2))
    quotas = _inter_cluster_quotas(
        pair_list, cluster_ids, inter_cluster_traffic, total_inter
    )
    for (p, q), quota in quotas.items():
        candidates = [(a, b) for a in members[p] for b in members[q]]
        added = _add_sampled_links(
            geometry, candidates, quota, config.alpha_inter, rng, try_add
        )
        if added < quota:
            # Port caps can exhaust a pair; spill the remainder anywhere.
            _add_sampled_links(
                geometry,
                [
                    (a, b)
                    for a, b in itertools.combinations(range(geometry.num_nodes), 2)
                    if clusters[a] != clusters[b]
                ],
                quota - added,
                config.alpha_inter,
                rng,
                try_add,
            )

    topology = Topology(name=name, geometry=geometry, links=links)
    if not topology.is_connected():
        raise RuntimeError("small-world construction produced a disconnected network")
    return topology


def _wiring_weight(geometry: GridGeometry, a: int, b: int, alpha: float) -> float:
    distance = max(geometry.distance_mm(a, b), 1e-9)
    return distance**-alpha


def _weighted_order(
    items: Sequence[int], weights: np.ndarray, rng: np.random.Generator
) -> List[int]:
    """Items in random order biased by weights (without replacement)."""
    remaining = list(items)
    remaining_weights = np.array(weights, dtype=float)
    ordered: List[int] = []
    while remaining:
        probabilities = remaining_weights / remaining_weights.sum()
        index = int(rng.choice(len(remaining), p=probabilities))
        ordered.append(remaining.pop(index))
        remaining_weights = np.delete(remaining_weights, index)
    return ordered


def _add_sampled_links(
    geometry: GridGeometry,
    candidates: List[Tuple[int, int]],
    count: int,
    alpha: float,
    rng: np.random.Generator,
    try_add,
) -> int:
    """Sample *count* links from *candidates* with power-law probability."""
    if count <= 0 or not candidates:
        return 0
    weights = np.array(
        [_wiring_weight(geometry, a, b, alpha) for a, b in candidates]
    )
    added = 0
    for index in map(int, _sample_order(weights, rng)):
        if added >= count:
            break
        a, b = candidates[index]
        if try_add(a, b):
            added += 1
    return added


def _sample_order(weights: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Random permutation of indices biased by weights (Gumbel trick)."""
    gumbel = rng.gumbel(size=len(weights))
    return np.argsort(-(np.log(np.maximum(weights, 1e-300)) + gumbel))


def _inter_cluster_quotas(
    pair_list: List[Tuple[int, int]],
    cluster_ids: List[int],
    traffic: Optional[np.ndarray],
    total_links: int,
) -> Dict[Tuple[int, int], int]:
    """Largest-remainder allocation of inter-cluster links to cluster pairs.

    "The proportion of links allocated between two clusters is directly
    related to the proportion of inter-cluster traffic between the two
    clusters in total inter-cluster traffic" (paper Sec. 5).  Every pair
    gets at least one link so the cluster graph stays complete.
    """
    if total_links < len(pair_list):
        raise ValueError(
            f"{total_links} inter-cluster links cannot cover "
            f"{len(pair_list)} cluster pairs"
        )
    if traffic is None:
        shares = np.ones(len(pair_list))
    else:
        traffic = np.asarray(traffic, dtype=float)
        index_of = {cid: i for i, cid in enumerate(cluster_ids)}
        shares = np.array(
            [
                traffic[index_of[p], index_of[q]] + traffic[index_of[q], index_of[p]]
                for p, q in pair_list
            ]
        )
        if shares.sum() <= 0:
            shares = np.ones(len(pair_list))
    # Reserve one link per pair, distribute the rest proportionally.
    remaining = total_links - len(pair_list)
    raw = shares / shares.sum() * remaining
    base = np.floor(raw).astype(int)
    leftover = remaining - int(base.sum())
    order = np.argsort(-(raw - base))
    for index in order[:leftover]:
        base[index] += 1
    return {pair: 1 + int(base[i]) for i, pair in enumerate(pair_list)}
