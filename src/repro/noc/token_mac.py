"""Discrete-event simulation of a token-MAC wireless channel.

The flow model (:mod:`repro.noc.network`) treats each mm-wave channel as
a serialized resource with a fixed average token-acquisition overhead and
an M/D/1-style queueing term.  This module provides the ground truth that
assumption is calibrated against: an event-driven simulation of the
actual protocol -- a token rotating round-robin among the channel's WIs,
each WI transmitting at most one queued packet per token visit (as in
Deb et al., IEEE TC 2013).

Use :func:`simulate_token_channel` directly to study a load point, or
:func:`measured_token_overhead` to extract the effective per-packet
overhead (wait beyond pure serialization) for comparison with
``WirelessSpec.token_overhead_s``.  ``tests/noc/test_token_mac.py``
checks the protocol invariants and the analytic model's error at the
calibrated operating points.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.noc.wireless import WirelessSpec
from repro.utils.rng import SeedLike, derive_rng
from repro.utils.validation import check_positive


@dataclass
class TokenMacStats:
    """Measured behaviour of one simulated channel."""

    #: Mean time from packet arrival to the start of its transmission.
    mean_wait_s: float
    #: 95th percentile of the same wait.
    p95_wait_s: float
    #: Delivered bits / simulated time.
    throughput_bps: float
    #: Offered bits / simulated time (>= throughput when saturated).
    offered_bps: float
    #: Packets delivered per WI (fairness check).
    delivered_per_wi: List[int] = field(default_factory=list)

    @property
    def utilization(self) -> float:
        return self.throughput_bps / max(self.offered_bps, 1e-30)


def simulate_token_channel(
    arrival_rates_pps: Sequence[float],
    packet_bits: float,
    spec: WirelessSpec = WirelessSpec(),
    duration_s: float = 200e-6,
    token_pass_s: float = 0.5e-9,
    seed: SeedLike = None,
    max_queue: int = 4096,
) -> TokenMacStats:
    """Simulate one channel shared by ``len(arrival_rates_pps)`` WIs.

    Packets arrive at each WI as a Poisson process with the given rate;
    the token visits WIs round-robin, spending ``token_pass_s`` per hand-
    off; the holder transmits one queued packet (serialized at the channel
    bandwidth plus propagation) before releasing the token.
    """
    num_wis = len(arrival_rates_pps)
    if num_wis < 2:
        raise ValueError("a shared channel needs at least 2 WIs")
    check_positive("packet_bits", packet_bits)
    check_positive("duration_s", duration_s)
    check_positive("token_pass_s", token_pass_s, allow_zero=True)
    for rate in arrival_rates_pps:
        check_positive("arrival rate", rate, allow_zero=True)

    rng = derive_rng(seed)
    # Pre-draw arrival times per WI.
    arrivals: List[List[float]] = []
    for rate in arrival_rates_pps:
        times: List[float] = []
        t = 0.0
        if rate > 0:
            while True:
                t += rng.exponential(1.0 / rate)
                if t >= duration_s:
                    break
                times.append(t)
        arrivals.append(times)

    queues: List[List[float]] = [[] for _ in range(num_wis)]
    next_arrival = [0] * num_wis
    waits: List[float] = []
    delivered = [0] * num_wis
    delivered_bits = 0.0
    offered_bits = packet_bits * sum(len(a) for a in arrivals)
    serialize_s = packet_bits / spec.bandwidth_bps + spec.propagation_s

    def admit_arrivals(now: float) -> None:
        for wi in range(num_wis):
            times = arrivals[wi]
            while next_arrival[wi] < len(times) and times[next_arrival[wi]] <= now:
                if len(queues[wi]) < max_queue:
                    queues[wi].append(times[next_arrival[wi]])
                next_arrival[wi] += 1

    now = 0.0
    holder = 0
    idle_spins = 0
    while now < duration_s:
        admit_arrivals(now)
        if queues[holder]:
            arrival_time = queues[holder].pop(0)
            waits.append(now - arrival_time)
            now += serialize_s
            delivered[holder] += 1
            delivered_bits += packet_bits
            idle_spins = 0
        else:
            idle_spins += 1
            if idle_spins >= num_wis:
                # Channel idle: jump to the next arrival anywhere.
                pending = [
                    arrivals[wi][next_arrival[wi]]
                    for wi in range(num_wis)
                    if next_arrival[wi] < len(arrivals[wi])
                ]
                if not pending:
                    break
                now = max(now, min(pending))
                idle_spins = 0
        now += token_pass_s
        holder = (holder + 1) % num_wis

    waits.sort()
    mean_wait = sum(waits) / len(waits) if waits else 0.0
    p95 = waits[int(0.95 * (len(waits) - 1))] if waits else 0.0
    elapsed = max(now, duration_s)
    return TokenMacStats(
        mean_wait_s=mean_wait,
        p95_wait_s=p95,
        throughput_bps=delivered_bits / elapsed,
        offered_bps=offered_bits / duration_s,
        delivered_per_wi=delivered,
    )


def ring_size_for(geometry) -> int:
    """Token-ring size implied by a die: one WI per island per channel.

    Accepts a :class:`repro.core.geometry.DieGeometry` (or anything with
    a ``num_islands`` attribute); the paper's 4-island die yields the
    historical default of 4 WIs per ring.
    """
    num_islands = int(getattr(geometry, "num_islands", geometry))
    if num_islands < 2:
        raise ValueError(
            f"a token ring needs >= 2 WIs (one per island), got "
            f"{num_islands} islands"
        )
    return num_islands


def measured_token_overhead(
    channel_utilization: float,
    packet_bits: float = 544.0,
    num_wis: int = 4,
    spec: WirelessSpec = WirelessSpec(),
    seed: SeedLike = 0,
    duration_s: float = 400e-6,
) -> float:
    """Effective per-packet access overhead at a given channel load.

    Runs the protocol simulation with symmetric WIs offering
    ``channel_utilization`` of the channel bandwidth in aggregate and
    returns the mean wait (token acquisition + queueing) a packet sees --
    the quantity ``WirelessSpec.token_overhead_s`` plus the flow model's
    queueing term approximate analytically.  ``num_wis`` is the ring
    size; derive it from a die with :func:`ring_size_for` (``K`` rings
    on a ``K``-island die) rather than assuming the paper's 4.
    """
    if not 0.0 < channel_utilization < 1.0:
        raise ValueError(
            f"channel_utilization must be in (0,1), got {channel_utilization}"
        )
    total_pps = channel_utilization * spec.bandwidth_bps / packet_bits
    rates = [total_pps / num_wis] * num_wis
    stats = simulate_token_channel(
        rates, packet_bits, spec=spec, duration_s=duration_s, seed=seed
    )
    return stats.mean_wait_s
