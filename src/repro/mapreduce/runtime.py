"""Functional MapReduce runtime.

Executes a :class:`repro.mapreduce.job.MapReduceJob` with *num_workers*
logical workers, producing both the real computed result and the
platform-independent :class:`repro.mapreduce.trace.JobTrace` that the
timing simulator replays.

Execution follows Phoenix++ (paper Fig. 1):

1. **Library init** -- serial work on the master worker (task scheduling
   and key/value storage allocation), once per MapReduce iteration.
2. **Split** -- the job divides its input into similarly sized chunks.
3. **Map** -- chunks become tasks, distributed round-robin to worker
   queues; workers drain their own queue then steal (policy-controlled);
   each executed task emits pairs into the *executing* worker's container.
4. **Reduce** -- one reduce task per worker; task *r* pulls the keys that
   hash into partition *r* from every worker's container, merges their
   accumulators and finalizes.  The per-source byte counts recorded here
   are exactly the core-to-core traffic the VFI clustering and the WiNoC
   link allocation consume.
5. **Merge** -- a binary funnel over the sorted per-partition outputs;
   each stage halves the number of active workers, which is why specific
   cores stay busy late in the run (the paper's bottleneck cores).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro.mapreduce.containers import Container, stable_key_hash
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.scheduler import StealingPolicy, TaskQueueSet
from repro.mapreduce.tasks import Phase, Task, TaskCost
from repro.mapreduce.trace import (
    IterationTrace,
    JobTrace,
    MergeStageTrace,
    PhaseTrace,
    TaskRecord,
)


class MapReduceRuntime:
    """Runs jobs functionally and records execution traces.

    Parameters
    ----------
    num_workers:
        Number of logical workers (one per simulated core; 64 in the paper).
    policy:
        Task-stealing policy for the Map phase; defaults to Phoenix++'s
        unmodified greedy stealing.
    master_worker:
        Worker charged with library initialization (worker 0, mirroring
        the Phoenix++ master thread).
    """

    def __init__(
        self,
        num_workers: int,
        policy: Optional[StealingPolicy] = None,
        master_worker: int = 0,
    ):
        if num_workers <= 0:
            raise ValueError(f"num_workers must be > 0, got {num_workers}")
        if not 0 <= master_worker < num_workers:
            raise ValueError(
                f"master_worker {master_worker} out of range [0, {num_workers})"
            )
        self.num_workers = num_workers
        self.policy = policy
        self.master_worker = master_worker

    # ------------------------------------------------------------------ #

    def run(self, job: MapReduceJob) -> Tuple[Any, JobTrace]:
        """Execute *job*; return ``(result, trace)``.

        The result is whatever :meth:`MapReduceJob.final_result` returns;
        the trace covers every iteration the job actually ran.
        """
        trace = JobTrace(app_name=job.name, num_workers=self.num_workers)
        task_counter = _Counter()
        last_result: Dict[Hashable, Any] = {}
        for iteration in range(job.max_iterations()):
            if not job.begin_iteration(iteration):
                break
            iteration_trace, last_result = self._run_iteration(
                job, iteration, task_counter
            )
            trace.iterations.append(iteration_trace)
            job.end_iteration(iteration, last_result)
        if not trace.iterations:
            raise RuntimeError(f"job {job.name!r} declined to run any iteration")
        trace.output_bytes = len(last_result) * job.config.bytes_per_pair
        result = job.final_result(last_result)
        if job.config.trace_scale != 1.0:
            trace = trace.scaled(job.config.trace_scale)
        return result, trace

    # ------------------------------------------------------------------ #

    def _run_iteration(
        self, job: MapReduceJob, iteration: int, counter: "_Counter"
    ) -> Tuple[IterationTrace, Dict[Hashable, Any]]:
        config = job.config
        chunks = job.split(job.num_map_tasks(self.num_workers))
        if not chunks:
            raise ValueError(f"job {job.name!r} produced no map chunks")

        lib_init = TaskRecord(
            task_id=counter.next(),
            phase=Phase.LIB_INIT,
            cost=self._make_cost(
                config,
                instructions=config.lib_init_instructions
                + 2_000.0 * len(chunks),  # per-task scheduling bookkeeping
            ),
            home_worker=self.master_worker,
        )

        map_phase, containers = self._run_map(job, chunks, counter)
        reduce_phase, partitions = self._run_reduce(job, containers, counter)
        merge_stages, merged = self._run_merge(job, partitions, counter)
        return (
            IterationTrace(
                iteration=iteration,
                lib_init=lib_init,
                map_phase=map_phase,
                reduce_phase=reduce_phase,
                merge_stages=merge_stages,
            ),
            merged,
        )

    def _run_map(
        self, job: MapReduceJob, chunks: List[Any], counter: "_Counter"
    ) -> Tuple[PhaseTrace, List[Container]]:
        config = job.config
        containers = [job.make_container() for _ in range(self.num_workers)]
        tasks = [
            Task(
                task_id=counter.next(),
                phase=Phase.MAP,
                payload=chunk,
                home_worker=index % self.num_workers,
            )
            for index, chunk in enumerate(chunks)
        ]
        queues = TaskQueueSet(self.num_workers, self.policy or _default_policy())
        queues.load(tasks)
        phase = PhaseTrace(Phase.MAP)
        for worker, task in queues.drain_serial():
            emitted = _CountingEmit(containers[worker])
            returned = job.map(task.payload, emitted)
            if isinstance(returned, tuple):
                work, miss_weight = returned
            else:
                work, miss_weight = returned, 1.0
            if work is None or work < 0:
                raise ValueError(
                    f"{job.name}.map must return non-negative work units, got {returned!r}"
                )
            if miss_weight < 0:
                raise ValueError(
                    f"{job.name}.map miss weight must be >= 0, got {miss_weight}"
                )
            instructions = work * config.instructions_per_map_unit
            phase.tasks.append(
                TaskRecord(
                    task_id=task.task_id,
                    phase=Phase.MAP,
                    cost=self._make_cost(
                        config,
                        instructions=instructions,
                        kv_bytes_out=emitted.count * config.bytes_per_pair,
                        miss_weight=miss_weight,
                    ),
                    home_worker=worker,
                )
            )
        return phase, containers

    def _run_reduce(
        self, job: MapReduceJob, containers: List[Container], counter: "_Counter"
    ) -> Tuple[PhaseTrace, List[Dict[Hashable, Any]]]:
        config = job.config
        phase = PhaseTrace(Phase.REDUCE)
        partitions: List[Dict[Hashable, Any]] = []
        combiner = job.combiner()
        for partition in range(self.num_workers):
            grouped: Dict[Hashable, List[Any]] = defaultdict(list)
            bytes_by_worker: Dict[int, float] = {}
            for worker, container in enumerate(containers):
                pulled = 0
                for key, acc in container.partition_items(self.num_workers, partition):
                    grouped[key].append(acc)
                    pulled += 1
                if pulled:
                    bytes_by_worker[worker] = pulled * config.bytes_per_pair
            output: Dict[Hashable, Any] = {}
            work = 0.0
            for key, accumulators in grouped.items():
                merged = accumulators[0]
                for acc in accumulators[1:]:
                    merged = combiner.merge(merged, acc)
                output[key] = job.reduce_finalize(key, merged)
                work += job.reduce_work(key, accumulators)
            kv_in = sum(bytes_by_worker.values())
            phase.tasks.append(
                TaskRecord(
                    task_id=counter.next(),
                    phase=Phase.REDUCE,
                    cost=self._make_cost(
                        config,
                        instructions=work * config.instructions_per_reduce_pair,
                        kv_bytes_in=kv_in,
                        kv_bytes_out=len(output) * config.bytes_per_pair,
                    ),
                    home_worker=partition,
                    input_bytes_by_worker=bytes_by_worker,
                )
            )
            partitions.append(output)
        return phase, partitions

    def _run_merge(
        self,
        job: MapReduceJob,
        partitions: List[Dict[Hashable, Any]],
        counter: "_Counter",
    ) -> Tuple[List[MergeStageTrace], Dict[Hashable, Any]]:
        config = job.config
        merged_all: Dict[Hashable, Any] = {}
        for partition in partitions:
            merged_all.update(partition)
        if not job.merge_enabled():
            return [], merged_all

        # Sorted buffers per worker; sizes drive the funnel costs.
        buffers: Dict[int, List[Tuple[Any, Any]]] = {}
        for worker, partition in enumerate(partitions):
            entries = sorted(
                partition.items(), key=lambda kv: _orderable(job.sort_key(*kv))
            )
            buffers[worker] = entries

        stages: List[MergeStageTrace] = []
        active = sorted(buffers)
        stage_index = 0
        while len(active) > 1:
            stage = MergeStageTrace(stage_index=stage_index)
            survivors: List[int] = []
            for pair_start in range(0, len(active) - 1, 2):
                dst, src = active[pair_start], active[pair_start + 1]
                dst_buffer, src_buffer = buffers[dst], buffers[src]
                merged = _merge_sorted(dst_buffer, src_buffer, job)
                buffers[dst] = merged
                del buffers[src]
                src_bytes = len(src_buffer) * config.bytes_per_pair
                total_bytes = len(merged) * config.bytes_per_pair
                stage.tasks.append(
                    TaskRecord(
                        task_id=counter.next(),
                        phase=Phase.MERGE,
                        cost=self._make_cost(
                            config,
                            instructions=total_bytes
                            * config.instructions_per_merge_byte,
                            kv_bytes_in=src_bytes,
                            kv_bytes_out=total_bytes,
                        ),
                        home_worker=dst,
                        partner_worker=src,
                    )
                )
                survivors.append(dst)
            if len(active) % 2 == 1:
                survivors.append(active[-1])
            stages.append(stage)
            active = survivors
            stage_index += 1
        final_worker = active[0]
        final_output = dict(buffers[final_worker])
        return stages, final_output

    @staticmethod
    def _make_cost(
        config, *, instructions: float, miss_weight: float = 1.0, **kv
    ) -> TaskCost:
        """Derive memory-system costs from the instruction count.

        ``miss_weight`` scales the task's miss intensity relative to the
        job's nominal MPKI -- how data-dependent cache behaviour (e.g.
        k-means' unconverged clusters) shows up as per-core IPC
        heterogeneity in the paper's Fig. 2.
        """
        kilo = instructions / 1000.0
        return TaskCost(
            instructions=instructions,
            l2_accesses=kilo * config.l1_mpki * miss_weight,
            memory_accesses=kilo * config.l2_mpki * miss_weight,
            **kv,
        )


class _CountingEmit:
    """Emit callable that counts emissions into a container."""

    def __init__(self, container: Container):
        self.container = container
        self.count = 0

    def __call__(self, key: Hashable, value: Any) -> None:
        self.container.emit(key, value)
        self.count += 1


class _Counter:
    def __init__(self) -> None:
        self._value = 0

    def next(self) -> int:
        value = self._value
        self._value += 1
        return value


def _default_policy() -> StealingPolicy:
    from repro.mapreduce.scheduler import DefaultStealingPolicy

    return DefaultStealingPolicy()


def _orderable(key: Any) -> Any:
    """Make heterogeneous sort keys comparable (ints vs strings vs tuples)."""
    return (type(key).__name__, key) if not isinstance(key, tuple) else ("tuple", key)


def _merge_sorted(
    left: List[Tuple[Any, Any]], right: List[Tuple[Any, Any]], job: MapReduceJob
) -> List[Tuple[Any, Any]]:
    """Classic two-way merge on the job's sort key."""
    merged: List[Tuple[Any, Any]] = []
    i = j = 0
    while i < len(left) and j < len(right):
        lkey = _orderable(job.sort_key(*left[i]))
        rkey = _orderable(job.sort_key(*right[j]))
        if lkey <= rkey:
            merged.append(left[i])
            i += 1
        else:
            merged.append(right[j])
            j += 1
    merged.extend(left[i:])
    merged.extend(right[j:])
    return merged


def run_job(
    job: MapReduceJob,
    num_workers: int,
    policy: Optional[StealingPolicy] = None,
    master_worker: int = 0,
) -> Tuple[Any, JobTrace]:
    """Convenience wrapper: run *job* on a fresh runtime."""
    runtime = MapReduceRuntime(num_workers, policy=policy, master_worker=master_worker)
    return runtime.run(job)
