"""Execution traces: the contract between the functional MapReduce engine
and the timing/energy simulator.

A :class:`JobTrace` captures everything the architectural study needs from a
Phoenix++ run, independent of any platform:

* the serial library-initialization cost charged to the master worker;
* per-phase task lists with architectural costs (:class:`TaskRecord`);
* the key-value *flow matrix* of the Reduce phase -- how many intermediate
  bytes each reduce partition pulls from each map worker's container, which
  becomes explicit core-to-core NoC traffic;
* the merge tree -- ``log2(workers)`` funnel stages, each half as wide.

Traces are pure data (dataclasses of floats/ints), cheap to copy, and are
replayed by :class:`repro.sim.system.SystemSimulator` under any
platform/V-F/topology configuration without re-running the functional job.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.mapreduce.tasks import Phase, TaskCost


@dataclass
class TaskRecord:
    """Platform-independent record of one executed task."""

    task_id: int
    phase: Phase
    cost: TaskCost
    home_worker: int
    #: For reduce tasks: bytes pulled from each map worker's container,
    #: indexed by map worker id.  Empty for non-reduce tasks.
    input_bytes_by_worker: Dict[int, float] = field(default_factory=dict)
    #: For merge tasks: the worker whose buffer is merged *into* this
    #: task's worker (the funnel partner).  ``None`` otherwise.
    partner_worker: Optional[int] = None


@dataclass
class PhaseTrace:
    """All tasks of one phase, plus the stealing policy inputs."""

    phase: Phase
    tasks: List[TaskRecord] = field(default_factory=list)

    @property
    def total_cost(self) -> TaskCost:
        total = TaskCost.zero()
        for record in self.tasks:
            total = total + record.cost
        return total

    def __len__(self) -> int:
        return len(self.tasks)


@dataclass
class MergeStageTrace:
    """One funnel stage of the Merge phase.

    ``pairs`` maps (dst_worker, src_worker) -> bytes moved; each pair is one
    merge task executed on ``dst_worker``.
    """

    stage_index: int
    tasks: List[TaskRecord] = field(default_factory=list)


@dataclass
class IterationTrace:
    """One MapReduce iteration (Kmeans/PCA run two; others one)."""

    iteration: int
    lib_init: TaskRecord
    map_phase: PhaseTrace
    reduce_phase: PhaseTrace
    merge_stages: List[MergeStageTrace] = field(default_factory=list)

    @property
    def merge_tasks(self) -> List[TaskRecord]:
        tasks: List[TaskRecord] = []
        for stage in self.merge_stages:
            tasks.extend(stage.tasks)
        return tasks


@dataclass
class JobTrace:
    """Complete trace of a MapReduce job (possibly multiple iterations)."""

    app_name: str
    num_workers: int
    iterations: List[IterationTrace] = field(default_factory=list)
    #: Final output size in bytes (for reporting only).
    output_bytes: float = 0.0

    @property
    def num_iterations(self) -> int:
        return len(self.iterations)

    def all_tasks(self) -> List[TaskRecord]:
        tasks: List[TaskRecord] = []
        for iteration in self.iterations:
            tasks.append(iteration.lib_init)
            tasks.extend(iteration.map_phase.tasks)
            tasks.extend(iteration.reduce_phase.tasks)
            tasks.extend(iteration.merge_tasks)
        return tasks

    def total_instructions(self) -> float:
        return sum(record.cost.instructions for record in self.all_tasks())

    def map_task_count(self) -> int:
        return sum(len(it.map_phase) for it in self.iterations)

    def worker_flow_matrix(self) -> np.ndarray:
        """Aggregate worker-to-worker key-value flow in bytes.

        Entry (i, j) is the number of intermediate bytes worker *j* pulls
        from worker *i* across all reduce and merge tasks.  This matrix --
        after thread mapping -- is the ``f_ip`` term of the paper's VFI
        clustering objective (Eq. 1) and drives WiNoC link allocation.
        """
        flow = np.zeros((self.num_workers, self.num_workers), dtype=float)
        for iteration in self.iterations:
            for record in iteration.reduce_phase.tasks:
                dst = record.home_worker
                for src, nbytes in record.input_bytes_by_worker.items():
                    if src != dst:
                        flow[src, dst] += nbytes
            for record in iteration.merge_tasks:
                if record.partner_worker is not None:
                    src = record.partner_worker
                    dst = record.home_worker
                    if src != dst:
                        flow[src, dst] += record.cost.kv_bytes_in
        return flow

    def scaled(self, factor: float) -> "JobTrace":
        """Return a copy with every task cost scaled by *factor*.

        Used to extrapolate a tractably sized functional run up to the
        paper's dataset sizes (uniform scaling preserves all normalized
        metrics; see DESIGN.md substitution table).
        """
        scaled_iterations = []
        for iteration in self.iterations:
            scaled_iterations.append(
                IterationTrace(
                    iteration=iteration.iteration,
                    lib_init=_scale_record(iteration.lib_init, factor),
                    map_phase=PhaseTrace(
                        Phase.MAP,
                        [_scale_record(r, factor) for r in iteration.map_phase.tasks],
                    ),
                    reduce_phase=PhaseTrace(
                        Phase.REDUCE,
                        [_scale_record(r, factor) for r in iteration.reduce_phase.tasks],
                    ),
                    merge_stages=[
                        MergeStageTrace(
                            stage_index=stage.stage_index,
                            tasks=[_scale_record(r, factor) for r in stage.tasks],
                        )
                        for stage in iteration.merge_stages
                    ],
                )
            )
        return JobTrace(
            app_name=self.app_name,
            num_workers=self.num_workers,
            iterations=scaled_iterations,
            output_bytes=self.output_bytes * factor,
        )


def _scale_record(record: TaskRecord, factor: float) -> TaskRecord:
    return TaskRecord(
        task_id=record.task_id,
        phase=record.phase,
        cost=record.cost.scaled(factor),
        home_worker=record.home_worker,
        input_bytes_by_worker={
            worker: nbytes * factor
            for worker, nbytes in record.input_bytes_by_worker.items()
        },
        partner_worker=record.partner_worker,
    )
