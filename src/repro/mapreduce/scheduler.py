"""Work queues and task-stealing policies.

Phoenix++ assigns each created task to a worker queue; a worker that drains
its own queue *steals* unfinished tasks from others (paper Sec. 3.2).  On a
VFI platform the paper modifies stealing (Sec. 4.3, Eq. 3): a core running
below the maximum frequency is restricted to

    Nf = floor( N/C * (1 - (fmax - f)/fmax) )

tasks, "to prevent the cores with lower V/F from performing an undesired
task stealing".  We apply the cap to *stealing*: a slow core always may
run tasks from its own queue (fast cores steal those leftovers first
anyway, taking from the tail), but once it has executed Nf or more
tasks it must not steal -- which is exactly the undesired behaviour the
paper's Word Count case study describes.  A floor of one task keeps the
budget sane when N/C is small enough that Eq. (3) floors to zero.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence

from repro.mapreduce.tasks import Task


def vfi_task_cap(total_tasks: int, num_cores: int, freq_hz: float, fmax_hz: float) -> int:
    """Eq. (3): max tasks a core at *freq_hz* may run when ``freq < fmax``.

    Cores at ``fmax`` are uncapped (the equation is defined for f < fmax).
    """
    if total_tasks < 0:
        raise ValueError(f"total_tasks must be >= 0, got {total_tasks}")
    if num_cores <= 0:
        raise ValueError(f"num_cores must be > 0, got {num_cores}")
    if freq_hz <= 0 or fmax_hz <= 0:
        raise ValueError("frequencies must be > 0")
    if freq_hz > fmax_hz:
        raise ValueError(f"freq {freq_hz} exceeds fmax {fmax_hz}")
    if freq_hz == fmax_hz:
        return total_tasks
    return math.floor((total_tasks / num_cores) * (1.0 - (fmax_hz - freq_hz) / fmax_hz))


class StealingPolicy:
    """Decides whether a worker may take one more task, and from whom."""

    def prepare(
        self,
        total_tasks: int,
        num_workers: int,
        initial_counts: Optional[Sequence[int]] = None,
    ) -> None:
        """Called once per phase before any task executes.

        ``initial_counts`` is the number of tasks initially queued on each
        worker (the scheduler's round-robin allocation).
        """

    def may_steal(self, worker: int, executed_by_worker: int) -> bool:
        """May *worker* (having executed ``executed_by_worker`` tasks) steal?"""
        return True

    def choose_victim(
        self, thief: int, queue_lengths: Sequence[int]
    ) -> Optional[int]:
        """Pick the victim queue to steal from (default: longest queue)."""
        best: Optional[int] = None
        best_len = 0
        for victim, length in enumerate(queue_lengths):
            if victim == thief:
                continue
            if length > best_len:
                best, best_len = victim, length
        return best


class DefaultStealingPolicy(StealingPolicy):
    """Unmodified Phoenix++ stealing: any idle worker steals greedily."""


class CappedStealingPolicy(StealingPolicy):
    """VFI-aware stealing with the per-core task cap of Eq. (3).

    Parameters
    ----------
    core_frequencies_hz:
        Frequency of each worker's core (index = worker id).
    fmax_hz:
        Maximum operating frequency on the chip; ``None`` uses the max of
        *core_frequencies_hz*.
    """

    def __init__(
        self,
        core_frequencies_hz: Sequence[float],
        fmax_hz: Optional[float] = None,
    ):
        if not core_frequencies_hz:
            raise ValueError("core_frequencies_hz must be non-empty")
        self.core_frequencies_hz = list(core_frequencies_hz)
        self.fmax_hz = float(fmax_hz if fmax_hz is not None else max(core_frequencies_hz))
        for freq in self.core_frequencies_hz:
            if freq > self.fmax_hz:
                raise ValueError(
                    f"core frequency {freq} exceeds fmax {self.fmax_hz}"
                )
        self._caps: List[int] = []

    def prepare(
        self,
        total_tasks: int,
        num_workers: int,
        initial_counts: Optional[Sequence[int]] = None,
    ) -> None:
        if num_workers != len(self.core_frequencies_hz):
            raise ValueError(
                f"policy built for {len(self.core_frequencies_hz)} workers, "
                f"phase has {num_workers}"
            )
        if initial_counts is None:
            initial_counts = [0] * num_workers
        # Eq. (3) budget, floored at the worker's own initial allocation:
        # the cap exists to stop *undesired stealing*, never to leave a
        # worker's own queue stranded behind a zero/low budget when N/C is
        # small (slow workers' leftovers are stolen from the tail anyway).
        self._caps = [
            max(
                1,
                int(initial_counts[worker]),
                vfi_task_cap(total_tasks, num_workers, freq, self.fmax_hz),
            )
            for worker, freq in enumerate(self.core_frequencies_hz)
        ]

    def cap_for(self, worker: int) -> int:
        if not self._caps:
            raise RuntimeError("prepare() must run before cap_for()")
        return self._caps[worker]

    def may_steal(self, worker: int, executed_by_worker: int) -> bool:
        return executed_by_worker < self.cap_for(worker)


@dataclass
class TaskQueueSet:
    """Per-worker FIFO task queues with stealing.

    Used directly by the functional runtime (to decide execution order) and
    replayed with timing by :mod:`repro.sim`.
    """

    num_workers: int
    policy: StealingPolicy = field(default_factory=DefaultStealingPolicy)

    def __post_init__(self) -> None:
        if self.num_workers <= 0:
            raise ValueError(f"num_workers must be > 0, got {self.num_workers}")
        self._queues: List[Deque[Task]] = [deque() for _ in range(self.num_workers)]
        self._executed: Dict[int, int] = {w: 0 for w in range(self.num_workers)}
        self._total = 0
        # Stealing statistics for the current load() generation.  Plain int
        # increments (cheap enough to keep always-on); the simulator folds
        # them into telemetry counters when tracing is enabled.
        self.steal_attempts = 0
        self.steals = 0
        self.cap_rejections = 0

    def load(self, tasks: Sequence[Task]) -> None:
        """Distribute *tasks* to their home workers and arm the policy."""
        for queue in self._queues:
            queue.clear()
        self._executed = {w: 0 for w in range(self.num_workers)}
        self._total = len(tasks)
        self.steal_attempts = 0
        self.steals = 0
        self.cap_rejections = 0
        initial_counts = [0] * self.num_workers
        for task in tasks:
            if not 0 <= task.home_worker < self.num_workers:
                raise ValueError(
                    f"task {task.task_id} home_worker {task.home_worker} "
                    f"out of range [0, {self.num_workers})"
                )
            initial_counts[task.home_worker] += 1
        self.policy.prepare(self._total, self.num_workers, initial_counts)
        for task in tasks:
            self._queues[task.home_worker].append(task)

    def queue_length(self, worker: int) -> int:
        return len(self._queues[worker])

    def own_queue_lengths(self) -> List[int]:
        """All workers' own-queue lengths in one call.

        The steal-epoch batched dispatch reads every queue length at the
        top of each epoch to find the next possible steal time; one list
        comprehension here beats ``num_workers`` :meth:`queue_length`
        calls in the hot loop."""
        return [len(queue) for queue in self._queues]

    def executed_count(self, worker: int) -> int:
        return self._executed[worker]

    @property
    def remaining(self) -> int:
        return sum(len(queue) for queue in self._queues)

    def next_task(self, worker: int) -> Optional[Task]:
        """Pop the next task for *worker*: own queue first, then steal.

        Returns ``None`` when no work remains or the worker's stealing
        budget is exhausted.  A worker always may pop its own queue (fast
        cores steal those leftovers from the tail); the Eq. (3) cap only
        gates stealing, per the paper's stated intent.
        """
        own = self._queues[worker]
        if own:
            task = own.popleft()
            self._executed[worker] += 1
            return task
        if self.remaining == 0:
            return None
        self.steal_attempts += 1
        if not self.policy.may_steal(worker, self._executed[worker]):
            self.cap_rejections += 1
            return None
        lengths = [len(queue) for queue in self._queues]
        victim = self.policy.choose_victim(worker, lengths)
        if victim is None or not self._queues[victim]:
            return None
        task = self._queues[victim].pop()
        self._executed[worker] += 1
        self.steals += 1
        return task

    def commit_own(self, worker: int, count: int) -> List[Task]:
        """Bulk-pop *count* tasks from the head of *worker*'s own queue.

        The epoch-batched map dispatch commits each worker's own-queue
        run in one call per steal epoch instead of ping-ponging through
        :meth:`next_task` -- mid-phase commits are fine: a worker's own
        queue is always a contiguous run of its home allocation (head
        pops advance the front, steals shorten the tail).  Semantics
        match *count* consecutive own-queue pops exactly: executed
        counts advance, stealing counters and the policy are untouched
        (the Eq. 3 cap only gates steals, never a worker's own queue).
        """
        own = self._queues[worker]
        if count > len(own):
            raise ValueError(
                f"worker {worker} owns {len(own)} queued tasks, "
                f"cannot commit {count}"
            )
        popped = [own.popleft() for _ in range(count)]
        self._executed[worker] += count
        return popped

    def requeue(self, worker: int, task: Task) -> None:
        """Put *task* back at the head of *worker*'s own queue.

        Fault re-execution: an execution killed by a core failure returns
        its task to the victim's queue, where surviving workers steal it
        from the tail (or the force-drain backstop picks it up).  Counters
        and executed counts are untouched -- the original pop already
        charged them, and the re-execution will charge its own."""
        self._queues[worker].appendleft(task)

    def drain_serial(self) -> List[tuple]:
        """Execute all queues in a deterministic round-robin order.

        Returns a list of ``(worker, task)`` pairs in execution order.  This
        is how the functional runtime consumes the queues when no timing
        model is involved; the timing simulator instead interleaves
        :meth:`next_task` calls by simulated completion times.
        """
        order: List[tuple] = []
        idle_rounds = 0
        worker = 0
        while self.remaining > 0 and idle_rounds < self.num_workers:
            task = self.next_task(worker)
            if task is None:
                idle_rounds += 1
            else:
                idle_rounds = 0
                order.append((worker, task))
            worker = (worker + 1) % self.num_workers
        # Correctness backstop: if the policy capped every worker while work
        # remains (possible with a user-supplied fmax above every core),
        # execute the leftovers on worker 0 regardless of the cap.
        order.extend(self.force_drain(0))
        return order

    def force_drain(self, worker: int) -> List[tuple]:
        """Pop every remaining task and attribute execution to *worker*."""
        order: List[tuple] = []
        for queue in self._queues:
            while queue:
                task = queue.popleft()
                self._executed[worker] += 1
                order.append((worker, task))
        return order
