"""Split-phase helpers: divide input data into similarly sized sub-units.

Per the paper (Sec. 3.1): "During the Split phase, the input data is divided
into multiple similarly sized sub-units. The number of available cores and
the nature of the application determine the number of data units created."
"""

from __future__ import annotations

from typing import List, Sequence, Tuple


def chunk_indices(total: int, num_chunks: int) -> List[Tuple[int, int]]:
    """Return ``num_chunks`` half-open index ranges covering [0, total).

    Ranges differ in length by at most one element, matching the
    "similarly sized sub-units" requirement.  When ``total < num_chunks``
    the trailing ranges are empty and are dropped.
    """
    if total < 0:
        raise ValueError(f"total must be >= 0, got {total}")
    if num_chunks <= 0:
        raise ValueError(f"num_chunks must be > 0, got {num_chunks}")
    base, extra = divmod(total, num_chunks)
    ranges: List[Tuple[int, int]] = []
    start = 0
    for index in range(num_chunks):
        length = base + (1 if index < extra else 0)
        if length == 0:
            break
        ranges.append((start, start + length))
        start += length
    return ranges


def split_evenly(data: Sequence, num_chunks: int) -> List[Sequence]:
    """Split *data* into up to *num_chunks* contiguous, similarly sized parts."""
    return [data[lo:hi] for lo, hi in chunk_indices(len(data), num_chunks)]


def default_task_count(data_units: int, num_workers: int, *, tasks_per_worker: int = 2) -> int:
    """Heuristic Phoenix++ task count: enough tasks for stealing to matter.

    Phoenix++ typically creates more tasks than cores so finished cores have
    something to steal; the Word Count case study in the paper uses 100 map
    tasks on 64 cores (~1.5 per core).
    """
    if num_workers <= 0:
        raise ValueError(f"num_workers must be > 0, got {num_workers}")
    if data_units <= 0:
        return num_workers
    return max(1, min(data_units, num_workers * tasks_per_worker))
