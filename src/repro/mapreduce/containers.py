"""Phoenix++-style intermediate key-value containers.

Phoenix++'s central insight is that the right container for the
intermediate (key, value) state depends on the key space:

* :class:`HashContainer` -- unknown / unbounded keys (word count);
* :class:`ArrayContainer` -- dense integer keys in a known range
  (histogram bins, matrix cells);
* :class:`OneBucketContainer` -- a single logical key (linear regression's
  global sufficient statistics).

Each map worker owns one container; emission applies the combiner
immediately (map-side combining).  After the Map phase the engine hashes
keys into reduce partitions and each Reduce task merges the matching slice
of every worker's container.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Iterator, List, Tuple

from repro.mapreduce.combiners import Combiner


class Container:
    """Interface for per-worker intermediate key-value state."""

    def __init__(self, combiner: Combiner):
        self.combiner = combiner

    def emit(self, key: Hashable, value: Any) -> None:
        """Fold (key, value) into this container via the combiner."""
        raise NotImplementedError

    def items(self) -> Iterator[Tuple[Hashable, Any]]:
        """Iterate over (key, accumulator) pairs."""
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def partition_items(
        self, num_partitions: int, partition: int
    ) -> Iterator[Tuple[Hashable, Any]]:
        """Yield the (key, accumulator) pairs that hash into *partition*."""
        if not 0 <= partition < num_partitions:
            raise ValueError(
                f"partition {partition} out of range [0, {num_partitions})"
            )
        for key, acc in self.items():
            if stable_key_hash(key) % num_partitions == partition:
                yield key, acc


def stable_key_hash(key: Hashable) -> int:
    """Deterministic, process-stable hash for partitioning keys.

    ``hash(str)`` is salted per process in Python, which would make reduce
    partitions (and hence the simulated traffic matrix) irreproducible, so
    strings and bytes are hashed explicitly.
    """
    if isinstance(key, str):
        key = key.encode("utf-8")
    if isinstance(key, bytes):
        value = 2166136261
        for byte in key:
            value = ((value ^ byte) * 16777619) & 0xFFFFFFFF
        return value
    if isinstance(key, bool):
        return int(key)
    if isinstance(key, int):
        return key & 0x7FFFFFFF
    if isinstance(key, tuple):
        value = 1099511628211
        for element in key:
            value = (value * 31 + stable_key_hash(element)) & 0x7FFFFFFFFFFF
        return value
    return hash(key) & 0x7FFFFFFF


class HashContainer(Container):
    """Dictionary-backed container for unbounded key spaces."""

    def __init__(self, combiner: Combiner):
        super().__init__(combiner)
        self._data: Dict[Hashable, Any] = {}

    def emit(self, key: Hashable, value: Any) -> None:
        if key in self._data:
            self._data[key] = self.combiner.add(self._data[key], value)
        else:
            self._data[key] = self.combiner.add(self.combiner.identity(), value)

    def items(self) -> Iterator[Tuple[Hashable, Any]]:
        return iter(self._data.items())

    def __len__(self) -> int:
        return len(self._data)


class ArrayContainer(Container):
    """Fixed-size array container for dense integer keys in [0, size)."""

    def __init__(self, combiner: Combiner, size: int):
        super().__init__(combiner)
        if size <= 0:
            raise ValueError(f"ArrayContainer size must be > 0, got {size}")
        self.size = size
        self._data: List[Any] = [None] * size

    def emit(self, key: Hashable, value: Any) -> None:
        if not isinstance(key, int) or isinstance(key, bool):
            raise TypeError(f"ArrayContainer keys must be int, got {key!r}")
        if not 0 <= key < self.size:
            raise KeyError(f"key {key} out of range [0, {self.size})")
        if self._data[key] is None:
            self._data[key] = self.combiner.identity()
        self._data[key] = self.combiner.add(self._data[key], value)

    def items(self) -> Iterator[Tuple[int, Any]]:
        for key, acc in enumerate(self._data):
            if acc is not None:
                yield key, acc

    def __len__(self) -> int:
        return sum(1 for acc in self._data if acc is not None)


class OneBucketContainer(Container):
    """Single-key container for global-aggregate jobs (e.g. regression)."""

    _KEY = 0

    def __init__(self, combiner: Combiner):
        super().__init__(combiner)
        self._acc: Any = None

    def emit(self, key: Hashable, value: Any) -> None:
        if self._acc is None:
            self._acc = self.combiner.identity()
        self._acc = self.combiner.add(self._acc, value)

    def items(self) -> Iterator[Tuple[int, Any]]:
        if self._acc is not None:
            yield self._KEY, self._acc

    def __len__(self) -> int:
        return 0 if self._acc is None else 1
