"""Phoenix++-style combiners.

In Phoenix++ a *combiner* folds each emitted value into a small per-key
accumulator inside the map worker, so the intermediate state stays compact
and the Reduce phase mostly aggregates accumulators.  The engine applies
combiners both map-side (per worker) and reduce-side (across workers).
"""

from __future__ import annotations

from typing import Any, Generic, List, TypeVar

V = TypeVar("V")
A = TypeVar("A")


class Combiner(Generic[V, A]):
    """Associative fold used for map-side combining.

    Subclasses implement :meth:`identity`, :meth:`add` and :meth:`merge`;
    ``merge`` must be associative and commutative so reduce-side combining
    is order independent (a property-based test enforces this).
    """

    def identity(self) -> A:
        raise NotImplementedError

    def add(self, acc: A, value: V) -> A:
        """Fold one raw *value* into accumulator *acc*."""
        raise NotImplementedError

    def merge(self, acc: A, other: A) -> A:
        """Merge two accumulators."""
        raise NotImplementedError

    def finalize(self, acc: A) -> Any:
        """Turn the accumulator into the final output value."""
        return acc


class SumCombiner(Combiner[float, float]):
    """Sums values; the classic word-count / histogram combiner."""

    def identity(self) -> float:
        return 0.0

    def add(self, acc: float, value: float) -> float:
        return acc + value

    def merge(self, acc: float, other: float) -> float:
        return acc + other


class CountCombiner(Combiner[Any, int]):
    """Counts occurrences, ignoring the value payload."""

    def identity(self) -> int:
        return 0

    def add(self, acc: int, value: Any) -> int:
        return acc + 1

    def merge(self, acc: int, other: int) -> int:
        return acc + other


class MinCombiner(Combiner[float, float]):
    """Keeps the minimum value."""

    def identity(self) -> float:
        return float("inf")

    def add(self, acc: float, value: float) -> float:
        return value if value < acc else acc

    def merge(self, acc: float, other: float) -> float:
        return other if other < acc else acc


class MaxCombiner(Combiner[float, float]):
    """Keeps the maximum value."""

    def identity(self) -> float:
        return float("-inf")

    def add(self, acc: float, value: float) -> float:
        return value if value > acc else acc

    def merge(self, acc: float, other: float) -> float:
        return other if other > acc else acc


class MeanCombiner(Combiner[float, tuple]):
    """Tracks (sum, count) and finalizes to the arithmetic mean."""

    def identity(self) -> tuple:
        return (0.0, 0)

    def add(self, acc: tuple, value: float) -> tuple:
        total, count = acc
        return (total + value, count + 1)

    def merge(self, acc: tuple, other: tuple) -> tuple:
        return (acc[0] + other[0], acc[1] + other[1])

    def finalize(self, acc: tuple) -> float:
        total, count = acc
        if count == 0:
            raise ValueError("cannot finalize MeanCombiner with zero samples")
        return total / count


class BufferCombiner(Combiner[Any, List[Any]]):
    """Keeps every value (no reduction); used when Reduce needs all values."""

    def identity(self) -> List[Any]:
        return []

    def add(self, acc: List[Any], value: Any) -> List[Any]:
        acc.append(value)
        return acc

    def merge(self, acc: List[Any], other: List[Any]) -> List[Any]:
        acc.extend(other)
        return acc
