"""A Phoenix++-style shared-memory MapReduce engine.

This package reimplements the execution structure of Phoenix++ (Talbot et
al., MapReduce'11) that the paper's VFI study depends on:

* the four execution stages -- **Split**, **Map**, **Reduce**, **Merge** --
  plus the serial **library initialization** performed by the master core;
* Phoenix++-style intermediate key-value *containers* (hash, array,
  one-bucket) with pluggable *combiners*;
* a work queue with **task stealing**, including the paper's modified
  VFI-aware stealing cap of Eq. (3);
* an execution *trace* per job (task costs, inter-worker key-value flow)
  that the performance simulator in :mod:`repro.sim` replays on a timing
  and energy model.

The engine is functional: jobs really compute their answers (word counts,
k-means centroids, ...), and the same run produces the workload trace the
architectural study needs.
"""

from repro.mapreduce.combiners import (
    BufferCombiner,
    Combiner,
    CountCombiner,
    MaxCombiner,
    MeanCombiner,
    MinCombiner,
    SumCombiner,
)
from repro.mapreduce.containers import (
    ArrayContainer,
    Container,
    HashContainer,
    OneBucketContainer,
)
from repro.mapreduce.job import JobConfig, MapReduceJob
from repro.mapreduce.runtime import MapReduceRuntime, run_job
from repro.mapreduce.scheduler import (
    CappedStealingPolicy,
    DefaultStealingPolicy,
    StealingPolicy,
    TaskQueueSet,
    vfi_task_cap,
)
from repro.mapreduce.splitter import chunk_indices, split_evenly
from repro.mapreduce.tasks import Phase, Task, TaskCost
from repro.mapreduce.trace import JobTrace, MergeStageTrace, PhaseTrace, TaskRecord

__all__ = [
    "Combiner",
    "SumCombiner",
    "CountCombiner",
    "MinCombiner",
    "MaxCombiner",
    "MeanCombiner",
    "BufferCombiner",
    "Container",
    "HashContainer",
    "ArrayContainer",
    "OneBucketContainer",
    "MapReduceJob",
    "JobConfig",
    "MapReduceRuntime",
    "run_job",
    "TaskQueueSet",
    "StealingPolicy",
    "DefaultStealingPolicy",
    "CappedStealingPolicy",
    "vfi_task_cap",
    "split_evenly",
    "chunk_indices",
    "Phase",
    "Task",
    "TaskCost",
    "JobTrace",
    "PhaseTrace",
    "MergeStageTrace",
    "TaskRecord",
]
