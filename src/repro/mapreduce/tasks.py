"""Task and phase primitives shared by the functional engine and the timing
simulator."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Optional


class Phase(enum.Enum):
    """Phoenix++ execution stages (paper Fig. 1), plus library init.

    Library initialization happens once before each Map phase and runs on
    the master core only; the paper identifies it as one source of
    *bottleneck cores* (Sec. 4.2).
    """

    LIB_INIT = "lib_init"
    SPLIT = "split"
    MAP = "map"
    REDUCE = "reduce"
    MERGE = "merge"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class TaskCost:
    """Architectural cost of one task, consumed by :mod:`repro.sim`.

    Attributes
    ----------
    instructions:
        Dynamic instruction count charged to the executing core.
    l2_accesses:
        Number of L1-miss accesses that travel over the NoC to an L2 bank
        (MOESI directory request/response traffic).
    memory_accesses:
        Number of L2-miss accesses that additionally reach a memory
        controller.
    kv_bytes_in / kv_bytes_out:
        Intermediate key-value bytes consumed / produced; these bytes
        become explicit core-to-core NoC transfers in the Reduce and Merge
        phases.
    """

    instructions: float
    l2_accesses: float = 0.0
    memory_accesses: float = 0.0
    kv_bytes_in: float = 0.0
    kv_bytes_out: float = 0.0

    def __post_init__(self) -> None:
        for name in (
            "instructions",
            "l2_accesses",
            "memory_accesses",
            "kv_bytes_in",
            "kv_bytes_out",
        ):
            value = getattr(self, name)
            if value < 0:
                raise ValueError(f"TaskCost.{name} must be >= 0, got {value}")

    def scaled(self, factor: float) -> "TaskCost":
        """Return this cost uniformly scaled by *factor*."""
        if factor < 0:
            raise ValueError(f"scale factor must be >= 0, got {factor}")
        return TaskCost(
            instructions=self.instructions * factor,
            l2_accesses=self.l2_accesses * factor,
            memory_accesses=self.memory_accesses * factor,
            kv_bytes_in=self.kv_bytes_in * factor,
            kv_bytes_out=self.kv_bytes_out * factor,
        )

    def __add__(self, other: "TaskCost") -> "TaskCost":
        if not isinstance(other, TaskCost):
            return NotImplemented
        return TaskCost(
            instructions=self.instructions + other.instructions,
            l2_accesses=self.l2_accesses + other.l2_accesses,
            memory_accesses=self.memory_accesses + other.memory_accesses,
            kv_bytes_in=self.kv_bytes_in + other.kv_bytes_in,
            kv_bytes_out=self.kv_bytes_out + other.kv_bytes_out,
        )

    @staticmethod
    def zero() -> "TaskCost":
        return TaskCost(instructions=0.0)


@dataclass
class Task:
    """One schedulable unit of work.

    The functional runtime creates tasks with a *payload* (the data chunk or
    key partition) and fills in *cost* after executing them.  The timing
    simulator only looks at ``task_id``, ``phase``, ``cost`` and
    ``home_worker``.
    """

    task_id: int
    phase: Phase
    payload: Any = None
    cost: Optional[TaskCost] = None
    home_worker: int = 0
    metadata: dict = field(default_factory=dict)

    def require_cost(self) -> TaskCost:
        """Return the task cost, raising if the task has not been executed."""
        if self.cost is None:
            raise RuntimeError(
                f"task {self.task_id} ({self.phase}) has no cost; "
                "run it through the functional runtime first"
            )
        return self.cost
