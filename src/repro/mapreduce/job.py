"""Job specification for the Phoenix++-style engine.

A job subclasses :class:`MapReduceJob` and provides:

* :meth:`split` -- divide the input into map chunks;
* :meth:`map` -- process one chunk, emitting (key, value) pairs, and return
  the *work units* spent (an app-specific operation count that the cost
  model converts into instructions -- this is what lets data-dependent
  imbalance, e.g. k-means convergence, show up in core utilization);
* a :class:`repro.mapreduce.containers.Container` factory (Phoenix++'s
  container choice is part of the job definition);
* a :class:`JobConfig` with the architectural cost coefficients.

Iterative jobs (Kmeans, PCA in the paper) override :meth:`max_iterations`,
:meth:`begin_iteration` and :meth:`end_iteration`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, List, Sequence

from repro.mapreduce.containers import Container, HashContainer
from repro.mapreduce.combiners import Combiner, SumCombiner
from repro.utils.validation import check_positive

Emit = Callable[[Hashable, Any], None]


@dataclass(frozen=True)
class JobConfig:
    """Architectural cost coefficients for a job.

    The functional engine counts *work units* (map) and *pairs/bytes*
    (reduce/merge); this config converts those counts into the instruction
    and memory-access numbers the timing simulator charges.

    Attributes
    ----------
    instructions_per_map_unit:
        Instructions per unit of map work returned by :meth:`MapReduceJob.map`.
    instructions_per_reduce_pair:
        Instructions to merge one (key, accumulator) pair in Reduce.
    instructions_per_merge_byte:
        Instructions per byte merged in a Merge funnel task.
    bytes_per_pair:
        Size of one serialized intermediate (key, accumulator) pair.
    l1_mpki:
        L1 misses per kilo-instruction; every miss is an L2 access that
        crosses the NoC (request + response).
    l2_mpki:
        L2 misses per kilo-instruction; every miss additionally reaches a
        memory controller.
    lib_init_instructions:
        Serial library-initialization instructions on the master core per
        iteration (task scheduling + key/value storage allocation; paper
        Sec. 4.2).
    trace_scale:
        Uniform multiplier applied to the finished trace, used to
        extrapolate a scaled-down functional dataset to paper size.
    tasks_per_worker:
        Map-task over-decomposition factor (Phoenix++ creates more tasks
        than cores so stealing has material to work with).
    """

    instructions_per_map_unit: float = 50.0
    instructions_per_reduce_pair: float = 120.0
    instructions_per_merge_byte: float = 3.0
    bytes_per_pair: float = 16.0
    l1_mpki: float = 12.0
    l2_mpki: float = 1.2
    lib_init_instructions: float = 2.0e6
    trace_scale: float = 1.0
    tasks_per_worker: float = 1.5

    def __post_init__(self) -> None:
        check_positive("instructions_per_map_unit", self.instructions_per_map_unit)
        check_positive("instructions_per_reduce_pair", self.instructions_per_reduce_pair)
        check_positive(
            "instructions_per_merge_byte", self.instructions_per_merge_byte
        )
        check_positive("bytes_per_pair", self.bytes_per_pair)
        check_positive("l1_mpki", self.l1_mpki, allow_zero=True)
        check_positive("l2_mpki", self.l2_mpki, allow_zero=True)
        check_positive("lib_init_instructions", self.lib_init_instructions, allow_zero=True)
        check_positive("trace_scale", self.trace_scale)
        check_positive("tasks_per_worker", self.tasks_per_worker)


class MapReduceJob:
    """Base class for MapReduce jobs.

    Subclasses must implement :meth:`split` and :meth:`map`; everything
    else has Phoenix++-style defaults (hash container, sum combiner, one
    iteration, merge of the full reduce output).
    """

    name: str = "job"

    def __init__(self, config: JobConfig = JobConfig()):
        self.config = config

    # ------------------------------------------------------------------ #
    # Required hooks
    # ------------------------------------------------------------------ #

    def split(self, num_tasks: int) -> List[Any]:
        """Return up to *num_tasks* similarly sized map chunks."""
        raise NotImplementedError

    def map(self, chunk: Any, emit: Emit) -> float:
        """Process *chunk*, emit intermediate pairs, return work units.

        May instead return ``(work_units, miss_weight)``: the optional
        miss weight scales this task's cache-miss intensity relative to
        the job's nominal MPKI, modeling data-dependent locality (tasks
        with weight > 1 stall more per instruction and so show a lower
        core utilization while busy)."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Optional hooks with Phoenix++ defaults
    # ------------------------------------------------------------------ #

    def combiner(self) -> Combiner:
        return SumCombiner()

    def make_container(self) -> Container:
        """Per-worker intermediate container (Phoenix++ container choice)."""
        return HashContainer(self.combiner())

    def num_map_tasks(self, num_workers: int) -> int:
        """Number of map tasks to create for *num_workers* cores."""
        return max(1, round(num_workers * self.config.tasks_per_worker))

    def reduce_finalize(self, key: Hashable, accumulator: Any) -> Any:
        """Final per-key reduction; defaults to the combiner's finalize."""
        return self.combiner().finalize(accumulator)

    def sort_key(self, key: Hashable, value: Any) -> Any:
        """Ordering used by the Merge funnel (Phoenix++ sorts final output)."""
        return key

    def merge_enabled(self) -> bool:
        """Whether the job has a Merge phase (LR in the paper does not)."""
        return True

    # ------------------------------------------------------------------ #
    # Iteration hooks (Kmeans, PCA run two MapReduce iterations)
    # ------------------------------------------------------------------ #

    def max_iterations(self) -> int:
        return 1

    def begin_iteration(self, iteration: int) -> bool:
        """Prepare iteration *iteration*; return ``False`` to stop early."""
        return iteration < self.max_iterations()

    def end_iteration(self, iteration: int, result: Dict[Hashable, Any]) -> None:
        """Observe the merged output of iteration *iteration*."""

    def final_result(self, last_result: Dict[Hashable, Any]) -> Any:
        """Convert the last iteration's merged output into the job result."""
        return last_result

    # ------------------------------------------------------------------ #
    # Cost-model hooks (rarely overridden)
    # ------------------------------------------------------------------ #

    def reduce_work(self, key: Hashable, accumulators: Sequence[Any]) -> float:
        """Work units for reducing one key; defaults to the fan-in count."""
        return float(len(accumulators))
