"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list-apps``
    Show the six benchmark applications and their paper datasets.
``run-study <app>``
    Run one application through the full pipeline and print the
    normalized time/EDP of every configuration.
``design <app>``
    Run only the VFI design flow and print the clustering and V/F tables.
``report [--output FILE] [--jobs N] [--cache-dir PATH]``
    Run all six studies -- fanned out over N worker processes and cached
    on disk via the orchestrator -- and emit the full markdown
    reproduction report.
``sweep [app] --parameter {seed,size}``
    Orchestrated robustness/scalability sweep: run the pipeline across
    seeds or die sizes and print per-value plus aggregate tables.
``trace --app <app> [--system CONFIG]``
    Run one study with telemetry recording, write the Chrome trace-event
    JSON (open it at https://ui.perfetto.dev) and print the per-phase and
    per-island summary tables.
``faults <app> [--scenario NAME | --plan FILE]``
    Run the app clean and under a deterministic fault plan (preset
    scenario placed against the measured fault-free makespan, or a plan
    file) and print the per-configuration degradation table.
``cluster run [--workload NAME | --trace FILE] [--policy NAME|all]``
    Serve a seeded multi-job arrival trace on a fleet of simulated chips
    through one (or every) registered cluster scheduling policy; print
    the SLO table and optionally record the run as canonical JSON.
    ``--source closed`` turns backpressure rejections into seeded
    retry backoff; ``--jobs N`` prefetches the run's distinct studies
    through N parallel orchestrator workers before the event loop.
``cluster replay --record FILE [--jobs N]``
    Re-run a recorded cluster run (same trace/policy/fleet/source) and
    verify the replay is byte-identical (exit nonzero on divergence).
``cluster report --record FILE [FILE ...]``
    Render the markdown policy-comparison section from saved records.
``tech list``
    Show the technology-node tables (both scaling variants) and the
    core-type registry the tech axis is built from.
``tech frontier [--app APP] [--nodes ...] [--mixes ...] [--caps ...]``
    Sweep one app across technology configurations (node x core mix)
    through the orchestrator, print the dark-silicon frontier and the
    measured comparison, and optionally write the markdown section and
    the campaign manifest.
``tech export [--output FILE] [--format {md,json}]``
    Export the node/core tables and the dark-silicon frontier as
    markdown or JSON.
``power list``
    Show the estimated uncapped chip peaks and the default cap ladders
    per die size.
``power sweep [--app APP] [--caps W ...] [--plan FILE]``
    Run one app at the uncapped baseline plus several chip power caps
    through the orchestrator (optionally composed with a fault plan),
    print the measured throughput/energy/EDP frontier and optionally
    write the markdown section and the campaign manifest.
``power export [--output FILE] [--format {md,json}]``
    Export the estimated peaks / default cap ladders as markdown or
    JSON.
``topology <app>``
    Build the application's WiNoC and render it (die map, V/F floorplan,
    degrees, link histogram).

Every subcommand exits nonzero with a one-line message on stderr when
given bad arguments; tracebacks are reserved for actual bugs.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import __version__
from repro.analysis.tables import ascii_bars, format_table, table1_datasets
from repro.apps.registry import APP_NAMES
from repro.core.experiment import (
    NVFI_MESH,
    VFI1_MESH,
    VFI2_MESH,
    VFI2_WINOC,
    run_app_study,
)
from repro.faults.scenarios import SCENARIOS as FAULT_SCENARIOS

#: Simulated configurations addressable from the command line.
CONFIG_CHOICES = (NVFI_MESH, VFI1_MESH, VFI2_MESH, VFI2_WINOC)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Energy-efficient MapReduce on VFI-enabled wireless-NoC "
            "multicore platforms (DAC 2015 reproduction)"
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-apps", help="list the six benchmark applications")

    study = sub.add_parser("run-study", help="run one app through the pipeline")
    study.add_argument("app", choices=APP_NAMES)
    study.add_argument("--scale", type=float, default=1.0)
    study.add_argument("--seed", type=int, default=7)

    design = sub.add_parser("design", help="run only the VFI design flow")
    design.add_argument("app", choices=APP_NAMES)
    design.add_argument("--scale", type=float, default=1.0)
    design.add_argument("--seed", type=int, default=7)

    report = sub.add_parser("report", help="full markdown reproduction report")
    report.add_argument("--output", default=None, help="write to file")
    report.add_argument("--scale", type=float, default=1.0)
    report.add_argument("--seed", type=int, default=7)
    report.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the study campaign (default: serial)",
    )
    report.add_argument(
        "--cache-dir", default=None,
        help="persistent study cache directory (re-runs resolve instantly)",
    )

    sweep = sub.add_parser(
        "sweep", help="orchestrated seed/size sweep of one app"
    )
    sweep.add_argument("app", nargs="?", default="histogram", choices=APP_NAMES)
    sweep.add_argument(
        "--parameter", choices=("seed", "size"), default="seed",
        help="sweep random seeds (robustness) or die sizes (scalability)",
    )
    sweep.add_argument(
        "--values", type=int, nargs="+", default=None,
        help="swept values (default: seeds 7-11, or sizes 16 36 64)",
    )
    sweep.add_argument("--scale", type=float, default=1.0)
    sweep.add_argument(
        "--seed", type=int, default=7, help="base seed for size sweeps"
    )
    sweep.add_argument(
        "--num-workers", type=int, default=64,
        help="die size for seed sweeps",
    )
    sweep.add_argument("--jobs", type=int, default=1)
    sweep.add_argument("--cache-dir", default=None)
    sweep.add_argument(
        "--manifest", default=None,
        help="save the campaign's run manifest (JSON) to this path; a "
        "sibling .trace.json with the per-unit timeline is written too",
    )

    trace = sub.add_parser(
        "trace", help="record a telemetry trace of one app study"
    )
    trace.add_argument("--app", required=True, choices=APP_NAMES)
    trace.add_argument(
        "--system", choices=CONFIG_CHOICES, default=VFI2_WINOC,
        help="configuration the summary tables focus on",
    )
    trace.add_argument("--scale", type=float, default=1.0)
    trace.add_argument("--seed", type=int, default=7)
    trace.add_argument("--num-workers", type=int, default=64)
    trace.add_argument(
        "--output", default=None,
        help="Chrome trace-event JSON path (default <app>_<system>.trace.json)",
    )
    trace.add_argument(
        "--jsonl", default=None,
        help="also dump every telemetry record as JSONL to this path",
    )
    trace.add_argument(
        "--wall", action="store_true",
        help="include wall-clock spans (design flow, pipeline stages); "
        "makes the export non-deterministic",
    )

    faults = sub.add_parser(
        "faults", help="deterministic fault-injection study of one app"
    )
    faults.add_argument("app", choices=APP_NAMES)
    faults.add_argument(
        "--scenario", choices=FAULT_SCENARIOS, default="mixed",
        help="preset fault scenario, placed against the fault-free makespan",
    )
    faults.add_argument(
        "--plan", default=None,
        help="JSON fault-plan file to inject instead of a preset scenario",
    )
    faults.add_argument("--scale", type=float, default=1.0)
    faults.add_argument("--seed", type=int, default=7)
    faults.add_argument("--num-workers", type=int, default=64)
    faults.add_argument("--jobs", type=int, default=1)
    faults.add_argument(
        "--cache-dir", default=None,
        help="persistent study cache shared by the clean and faulted runs",
    )
    faults.add_argument(
        "--manifest", default=None,
        help="save the campaign's run manifest (JSON) to this path",
    )
    faults.add_argument(
        "--trace", default=None,
        help="re-run the faulted study with telemetry and write the "
        "Chrome trace-event JSON here",
    )
    faults.add_argument(
        "--export-plan", default=None,
        help="write the injected plan's canonical JSON to this path",
    )

    cluster = sub.add_parser(
        "cluster", help="multi-job cluster service (run/replay/report)"
    )
    cluster_sub = cluster.add_subparsers(dest="cluster_command", required=True)

    cluster_run = cluster_sub.add_parser(
        "run", help="serve an arrival trace through a scheduling policy"
    )
    from repro.cluster.arrivals import WORKLOADS as _WORKLOADS

    cluster_run.add_argument(
        "--workload", choices=sorted(_WORKLOADS), default="smoke",
        help="preset seeded workload (ignored when --trace is given)",
    )
    cluster_run.add_argument(
        "--trace", default=None,
        help="arrival-trace JSON file to serve instead of a preset",
    )
    cluster_run.add_argument(
        "--policy", default="all",
        help="registered scheduler name, or 'all' for the comparison table",
    )
    cluster_run.add_argument("--seed", type=int, default=7)
    cluster_run.add_argument(
        "--chips", type=int, default=2, help="fleet size"
    )
    cluster_run.add_argument(
        "--num-workers", type=int, default=16, help="cores per chip"
    )
    cluster_run.add_argument(
        "--queue-depth", type=int, default=8,
        help="admission-control queue bound (backpressure beyond it)",
    )
    cluster_run.add_argument(
        "--fault-plan", default=None,
        help="JSON fault-plan file degrading chip 0 (fault-axis composition)",
    )
    cluster_run.add_argument("--cache-dir", default=None)
    cluster_run.add_argument(
        "--record", default=None,
        help="save the run record(s) as canonical JSON; with --policy all "
        "a _<policy> suffix is appended per policy",
    )
    cluster_run.add_argument(
        "--export-trace", default=None,
        help="write the served arrival trace's canonical JSON to this path",
    )
    cluster_run.add_argument(
        "--source", choices=("open", "closed"), default="open",
        help="arrival discipline: 'open' sheds backpressured jobs, "
        "'closed' retries them with seeded exponential backoff",
    )
    cluster_run.add_argument(
        "--retry-limit", type=int, default=3,
        help="closed loop: re-submissions before a job gives up",
    )
    cluster_run.add_argument(
        "--backoff-base", type=float, default=5.0,
        help="closed loop: first-retry backoff (seconds, doubles per try)",
    )
    cluster_run.add_argument(
        "--backoff-cap", type=float, default=120.0,
        help="closed loop: backoff ceiling (seconds)",
    )
    cluster_run.add_argument(
        "--jobs", type=int, default=None,
        help="prefetch the run's distinct studies through N parallel "
        "orchestrator workers before the event loop starts",
    )

    cluster_replay = cluster_sub.add_parser(
        "replay", help="re-run a recorded cluster run and verify it"
    )
    cluster_replay.add_argument("--record", required=True)
    cluster_replay.add_argument("--cache-dir", default=None)
    cluster_replay.add_argument(
        "--jobs", type=int, default=None,
        help="prefetch the replay's distinct studies through N parallel "
        "orchestrator workers before the event loop starts",
    )

    cluster_report = cluster_sub.add_parser(
        "report", help="markdown policy comparison from saved records"
    )
    cluster_report.add_argument("--record", nargs="+", required=True)
    cluster_report.add_argument("--output", default=None)

    tech = sub.add_parser(
        "tech", help="technology axis (list/frontier/export)"
    )
    tech_sub = tech.add_subparsers(dest="tech_command", required=True)

    tech_sub.add_parser(
        "list", help="show node tables and core-type registry"
    )

    tech_frontier = tech_sub.add_parser(
        "frontier",
        help="sweep an app across nodes x core mixes via the orchestrator",
    )
    tech_frontier.add_argument(
        "--app", default="histogram", choices=APP_NAMES
    )
    tech_frontier.add_argument(
        "--nodes", nargs="+", default=None, metavar="NODE",
        help="technology nodes to sweep (default: 65nm 45nm 32nm)",
    )
    tech_frontier.add_argument(
        "--mixes", nargs="+", default=None, metavar="MIX",
        help="core types / mix presets to sweep (default: ooo big_little)",
    )
    tech_frontier.add_argument(
        "--caps", type=float, nargs="+", default=None, metavar="W",
        help="chip power caps for the dark-silicon table "
        "(default: 40 80 120)",
    )
    tech_frontier.add_argument(
        "--variant", choices=("itrs", "cons"), default="itrs",
        help="technology-scaling trajectory (optimistic vs conservative)",
    )
    tech_frontier.add_argument("--scale", type=float, default=1.0)
    tech_frontier.add_argument("--seed", type=int, default=7)
    tech_frontier.add_argument("--num-workers", type=int, default=64)
    tech_frontier.add_argument("--jobs", type=int, default=1)
    tech_frontier.add_argument("--cache-dir", default=None)
    tech_frontier.add_argument(
        "--manifest", default=None,
        help="save the campaign's run manifest (JSON) to this path; a "
        "sibling .trace.json with the per-unit timeline is written too",
    )
    tech_frontier.add_argument(
        "--report", default=None,
        help="write the markdown technology-frontier section (with the "
        "measured sweep) to this path",
    )

    tech_export = tech_sub.add_parser(
        "export", help="export node/core tables and the frontier"
    )
    tech_export.add_argument(
        "--output", default=None, help="write to file (default: stdout)"
    )
    tech_export.add_argument(
        "--format", choices=("md", "json"), default="md"
    )
    tech_export.add_argument(
        "--nodes", nargs="+", default=None, metavar="NODE",
        help="nodes to export (default: every node)",
    )
    tech_export.add_argument(
        "--variant", choices=("itrs", "cons"), default="itrs"
    )

    power = sub.add_parser(
        "power", help="power-cap axis (list/sweep/export)"
    )
    power_sub = power.add_subparsers(dest="power_command", required=True)

    power_list = power_sub.add_parser(
        "list", help="show estimated chip peaks and the default cap ladders"
    )
    power_list.add_argument(
        "--num-workers", type=int, nargs="+", default=None, metavar="N",
        help="die sizes to price (default: 16 64 256)",
    )

    power_sweep = power_sub.add_parser(
        "sweep",
        help="run an app at several chip power caps via the orchestrator",
    )
    power_sweep.add_argument("--app", default="histogram", choices=APP_NAMES)
    power_sweep.add_argument(
        "--caps", type=float, nargs="+", default=None, metavar="W",
        help="chip caps in watts (default: 90/75/60/45%% of the "
        "estimated uncapped chip peak)",
    )
    power_sweep.add_argument("--scale", type=float, default=1.0)
    power_sweep.add_argument("--seed", type=int, default=7)
    power_sweep.add_argument("--num-workers", type=int, default=64)
    power_sweep.add_argument(
        "--plan", default=None, metavar="FILE",
        help="compose every cap level with this fault plan (canonical "
        "JSON file), demonstrating the cap x fault product",
    )
    power_sweep.add_argument("--jobs", type=int, default=1)
    power_sweep.add_argument("--cache-dir", default=None)
    power_sweep.add_argument(
        "--manifest", default=None,
        help="save the campaign's run manifest (JSON) to this path; a "
        "sibling .trace.json with the per-unit timeline is written too",
    )
    power_sweep.add_argument(
        "--report", default=None,
        help="write the markdown power-cap frontier section to this path",
    )

    power_export = power_sub.add_parser(
        "export", help="export the default cap ladders as markdown or JSON"
    )
    power_export.add_argument(
        "--output", default=None, help="write to file (default: stdout)"
    )
    power_export.add_argument(
        "--format", choices=("md", "json"), default="md"
    )
    power_export.add_argument(
        "--num-workers", type=int, nargs="+", default=None, metavar="N",
        help="die sizes to price (default: 16 64 256)",
    )

    topology = sub.add_parser("topology", help="render an app's WiNoC")
    topology.add_argument("app", choices=APP_NAMES)
    topology.add_argument("--scale", type=float, default=1.0)
    topology.add_argument("--seed", type=int, default=7)
    topology.add_argument(
        "--methodology", choices=("max_wireless", "min_hop"), default="max_wireless"
    )
    return parser


def _cmd_list_apps() -> int:
    print(table1_datasets())
    return 0


def _cmd_run_study(args) -> int:
    study = run_app_study(args.app, scale=args.scale, seed=args.seed)
    print(f"{study.label}: V/F islands (VFI 2): {', '.join(study.design.vfi2.labels())}")
    rows = []
    for config in (NVFI_MESH, VFI1_MESH, VFI2_MESH, VFI2_WINOC):
        result = study.result(config)
        rows.append(
            {
                "config": config,
                "time vs NVFI": f"{study.normalized_time(config):.3f}",
                "EDP vs NVFI": f"{study.normalized_edp(config):.3f}",
                "avg hops": f"{result.network.average_hops:.2f}",
                "wireless %": f"{result.network.wireless_fraction * 100:.1f}",
            }
        )
    print(format_table(rows))
    return 0


def _cmd_design(args) -> int:
    study = run_app_study(args.app, scale=args.scale, seed=args.seed)
    design = study.design
    print(f"Design for {study.label} (from the NVFI characterization):")
    print("\nIsland membership (worker -> island):")
    members = {}
    for worker, cluster in enumerate(design.worker_clusters):
        members.setdefault(cluster, []).append(worker)
    rows = []
    for island in sorted(members):
        rows.append(
            {
                "island": island,
                "VFI 1": design.vfi1.labels()[island],
                "VFI 2": design.vfi2.labels()[island],
                "mean util": f"{design.vfi1.island_utilization[island]:.3f}",
                "workers": " ".join(map(str, members[island][:8]))
                + (" ..." if len(members[island]) > 8 else ""),
            }
        )
    print(format_table(rows))
    report = design.bottleneck
    print(
        f"\nBottleneck: workers {report.bottleneck_workers or 'none'} "
        f"(ratio {report.ratio:.2f}, body cv {report.body_cv:.3f}); "
        f"reassigned islands: {list(design.vfi2.reassigned_islands) or 'none'}"
    )
    print("\nUtilization profile (sorted):")
    utilization = sorted(design.utilization, reverse=True)
    bars = {f"p{100 - 10 * i}": utilization[min(63, i * 6)] for i in range(10)}
    print(ascii_bars(bars, reference=1.0, width=30))
    return 0


def _print_progress(record) -> None:
    """One line per resolved study unit (long campaigns stay observable)."""
    note = f" after {record.retries} retries" if record.retries else ""
    line = f"{record.label}: {record.status}{note} ({record.wall_time_s:.1f}s)"
    if record.error:
        line += f" -- {record.error}"
    print(line, file=sys.stderr)


def _cmd_report(args) -> int:
    from repro.analysis.figures import collect_studies
    from repro.analysis.report import generate_report

    studies = collect_studies(
        scale=args.scale,
        seed=args.seed,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        progress=_print_progress,
    )
    text = generate_report(studies=studies, scale=args.scale, seed=args.seed)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"report written to {args.output}")
    else:
        print(text)
    return 0


def _cmd_sweep(args) -> int:
    from repro.core.sweep import CONFIGS, seed_sweep, size_sweep

    if args.parameter == "seed":
        values = args.values if args.values else list(range(7, 12))
        sweep = seed_sweep(
            args.app,
            seeds=values,
            scale=args.scale,
            num_workers=args.num_workers,
            jobs=args.jobs,
            cache_dir=args.cache_dir,
            progress=_print_progress,
        )
    else:
        values = args.values if args.values else [16, 36, 64]
        sweep = size_sweep(
            args.app,
            sizes=values,
            scale=args.scale,
            seed=args.seed,
            jobs=args.jobs,
            cache_dir=args.cache_dir,
            progress=_print_progress,
        )

    print(f"{args.app}: sweep over {sweep.parameter} = {values}")
    rows = []
    for value, row in sweep.rows.items():
        for config in CONFIGS:
            rows.append(
                {
                    sweep.parameter: value,
                    "config": config,
                    "time vs NVFI": f"{row[config]['time']:.3f}",
                    "EDP vs NVFI": f"{row[config]['edp']:.3f}",
                }
            )
    print(format_table(rows))
    print("\nAggregate over the sweep (mean +/- std):")
    rows = []
    for config, metrics in sweep.aggregate().items():
        rows.append(
            {
                "config": config,
                "time": f"{metrics['time'][0]:.3f} +/- {metrics['time'][1]:.3f}",
                "EDP": f"{metrics['edp'][0]:.3f} +/- {metrics['edp'][1]:.3f}",
                "EDP spread": f"{sweep.spread(config, 'edp'):.3f}",
            }
        )
    print(format_table(rows))
    if args.manifest and sweep.manifest is not None:
        import pathlib

        manifest_path = pathlib.Path(args.manifest)
        sweep.manifest.save(manifest_path)
        trace_path = manifest_path.with_suffix(".trace.json")
        sweep.manifest.save_trace(trace_path)
        print(f"\nrun manifest saved to {manifest_path} (+ {trace_path})")
    return 0


def _cmd_trace(args) -> int:
    from repro.telemetry import RecordingTracer, use_tracer
    from repro.telemetry.export import write_chrome_trace, write_jsonl
    from repro.telemetry.summary import (
        format_island_table,
        format_phase_table,
    )

    tracer = RecordingTracer()
    # use_cache=False: a memoized study would skip the simulations and
    # record nothing; tracing demands the run actually happen.
    with use_tracer(tracer):
        study = run_app_study(
            args.app,
            scale=args.scale,
            seed=args.seed,
            num_workers=args.num_workers,
            use_cache=False,
        )
    result = study.result(args.system)

    output = args.output or f"{args.app}_{args.system}.trace.json"
    write_chrome_trace(tracer, output, include_wall=args.wall)
    print(f"trace written to {output} (open at https://ui.perfetto.dev)")
    if args.jsonl:
        write_jsonl(tracer, args.jsonl, include_wall=args.wall)
        print(f"telemetry records written to {args.jsonl}")

    print(f"\nPer-phase timeline (simulated, {study.label}):")
    print(format_phase_table(tracer))
    print(f"\nPer-island activity ({result.platform_name}):")
    print(
        format_island_table(
            tracer, result.platform_name, study.design.worker_clusters
        )
    )
    steals = tracer.counter_total("sched.steals", key=result.platform_name)
    attempts = tracer.counter_total(
        "sched.steal_attempts", key=result.platform_name
    )
    rejections = tracer.counter_total(
        "sched.cap_rejections", key=result.platform_name
    )
    print(
        f"\nMap-phase stealing on {result.platform_name}: "
        f"{steals:.0f} steals / {attempts:.0f} attempts, "
        f"{rejections:.0f} Eq. (3) cap rejections"
    )
    return 0


def _cmd_faults(args) -> int:
    from repro.analysis.report import DEGRADATION_COLUMNS, degradation_rows
    from repro.faults import FaultPlan, preset_plan
    from repro.orchestrator.executor import run_campaign
    from repro.orchestrator.spec import StudySpec

    clean_spec = StudySpec(
        args.app, scale=args.scale, seed=args.seed, num_workers=args.num_workers
    )
    baseline = run_campaign(
        [clean_spec], jobs=args.jobs, cache=args.cache_dir,
        progress=_print_progress,
    )
    baseline.raise_failures()
    clean = baseline.study(clean_spec)
    horizon = clean.result(NVFI_MESH).total_time_s

    if args.plan is not None:
        with open(args.plan) as handle:
            plan = FaultPlan.from_json(handle.read())
    else:
        plan = preset_plan(args.scenario, horizon, args.num_workers)
    if len(plan) == 0:
        raise ValueError("fault plan is empty; nothing to inject")
    if args.export_plan:
        with open(args.export_plan, "w") as handle:
            handle.write(plan.to_json() + "\n")
        print(f"fault plan written to {args.export_plan}", file=sys.stderr)

    faulted_spec = StudySpec(
        args.app, scale=args.scale, seed=args.seed,
        num_workers=args.num_workers, fault_plan=plan,
    )
    campaign = run_campaign(
        [faulted_spec], jobs=args.jobs, cache=args.cache_dir,
        progress=_print_progress,
    )
    campaign.raise_failures()
    faulted = campaign.study(faulted_spec)

    impact = next(
        (r.faults for r in faulted.results.values() if r.faults is not None),
        None,
    )
    print(
        f"{clean.label}: plan '{plan.name or 'plan'}' "
        f"({len(plan)} events) against a {horizon * 1e3:.1f} ms baseline"
    )
    if impact is not None and impact.failed_workers:
        print(f"failed cores: {impact.failed_workers}")
    if impact is not None and impact.throttled_islands:
        print(f"throttled islands: {impact.throttled_islands}")
    print(format_table(degradation_rows(clean, faulted)))

    if args.manifest:
        import pathlib

        manifest_path = pathlib.Path(args.manifest)
        campaign.manifest.save(manifest_path)
        trace_path = manifest_path.with_suffix(".trace.json")
        campaign.manifest.save_trace(trace_path)
        print(f"run manifest saved to {manifest_path} (+ {trace_path})")

    if args.trace:
        from repro.telemetry import RecordingTracer, use_tracer
        from repro.telemetry.export import write_chrome_trace

        tracer = RecordingTracer()
        # use_cache=False: the faulted study above is memoized, and a
        # memo hit would record nothing.
        with use_tracer(tracer):
            run_app_study(
                args.app, scale=args.scale, seed=args.seed,
                num_workers=args.num_workers, use_cache=False,
                fault_plan=plan,
            )
        write_chrome_trace(tracer, args.trace)
        print(f"fault trace written to {args.trace} "
              "(open at https://ui.perfetto.dev)")
    return 0


def _cluster_run(args) -> int:
    from repro.analysis.tables import format_table
    from repro.cluster import (
        ArrivalTrace,
        fleet_for,
        preset_trace,
        run_workload,
        scheduler_names,
    )
    from repro.analysis.report import CLUSTER_COLUMNS, cluster_rows
    from repro.faults import FaultPlan

    if args.trace is not None:
        with open(args.trace) as handle:
            trace = ArrivalTrace.from_json(handle.read())
    else:
        trace = preset_trace(args.workload, seed=args.seed)

    fault_plans = None
    if args.fault_plan is not None:
        with open(args.fault_plan) as handle:
            plan = FaultPlan.from_json(handle.read())
        fault_plans = [plan] + [None] * (args.chips - 1)
    fleet = fleet_for(
        args.chips, num_workers=args.num_workers, fault_plans=fault_plans
    )

    if args.policy == "all":
        policies = scheduler_names()
    else:
        policies = [args.policy]

    print(
        f"workload {trace.name} (seed {trace.seed}, {len(trace)} jobs, "
        f"trace {trace.trace_key[:12]}) on {len(fleet)} x "
        f"{args.num_workers}-core chips, queue bound {args.queue_depth}",
        file=sys.stderr,
    )
    source_options = None
    if args.source == "closed":
        source_options = {
            "retry_limit": args.retry_limit,
            "backoff_base_s": args.backoff_base,
            "backoff_cap_s": args.backoff_cap,
        }
    results = []
    for policy in policies:
        result = run_workload(
            trace, fleet, policy=policy, cache=args.cache_dir,
            max_queue_depth=args.queue_depth,
            source=args.source, source_options=source_options,
            prefetch_jobs=args.jobs,
        )
        stats = result.study_stats
        extras = ""
        if result.report.retries or result.report.preemptions:
            extras = (
                f", {result.report.retries} retries, "
                f"{result.report.preemptions} preemptions"
            )
        print(
            f"{policy}: {result.report.completed} completed, "
            f"{stats['computed']} studies simulated, "
            f"{stats['cache_hits']} cache hits{extras} "
            f"(digest {result.replay_digest[:12]})",
            file=sys.stderr,
        )
        results.append(result)

    print(format_table(cluster_rows(results)))
    if args.export_trace:
        with open(args.export_trace, "w") as handle:
            handle.write(trace.to_json() + "\n")
        print(f"arrival trace written to {args.export_trace}", file=sys.stderr)
    if args.record:
        import pathlib

        base = pathlib.Path(args.record)
        for result in results:
            if len(results) == 1:
                path = base
            else:
                path = base.with_name(
                    f"{base.stem}_{result.policy}{base.suffix or '.json'}"
                )
            result.save(path)
            print(f"run record saved to {path}", file=sys.stderr)
    return 0


def _cluster_replay(args) -> int:
    from repro.cluster.record import ClusterRunResult, replay, verify_replay

    record = ClusterRunResult.load(args.record)
    replayed = replay(record, cache=args.cache_dir, prefetch_jobs=args.jobs)
    divergence = verify_replay(record, replayed)
    stats = replayed.study_stats
    if divergence is not None:
        print(f"repro: error: {divergence}", file=sys.stderr)
        return 3
    batched = ""
    if stats.get("batches"):
        batched = (
            f", {stats['prefetched']} prefetched in "
            f"{stats['batches']} batch(es)"
        )
    print(
        f"replay byte-identical (digest {record.replay_digest[:12]}): "
        f"{record.policy} on {record.trace.name}, "
        f"{replayed.report.completed} jobs completed, "
        f"{stats['computed']} studies simulated, "
        f"{stats['cache_hits']} cache hits{batched}"
    )
    return 0


def _cluster_report(args) -> int:
    from repro.analysis.report import cluster_section
    from repro.cluster.record import ClusterRunResult

    results = [ClusterRunResult.load(path) for path in args.record]
    text = cluster_section(results)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"cluster report written to {args.output}")
    else:
        print(text, end="")
    return 0


def _cmd_cluster(args) -> int:
    handlers = {
        "run": _cluster_run,
        "replay": _cluster_replay,
        "report": _cluster_report,
    }
    return handlers[args.cluster_command](args)


def _tech_list(args) -> int:
    from repro.tech import (
        VARIANTS,
        core_type_names,
        dvfs_ladder,
        get_core_type,
        get_node,
        node_names,
    )

    for variant in VARIANTS:
        print(f"technology nodes ({variant}):")
        rows = []
        for name in node_names():
            node = get_node(name, variant)
            ladder = dvfs_ladder(node)
            rows.append(
                {
                    "node": node.name,
                    "Vdd (V)": f"{node.vdd_nominal_v:.2f}",
                    "Vth (V)": f"{node.vth_v:.2f}",
                    "clock (GHz)": f"{node.frequency_nominal_hz / 1e9:.2f}",
                    "dyn x": f"{node.dynamic_scale:.2f}",
                    "leak x": f"{node.leakage_scale:.2f}",
                    "area x": f"{node.area_scale:.2f}",
                    "ladder": " ".join(p.label for p in ladder[:: len(ladder) - 1]),
                }
            )
        print(format_table(rows))
        print()
    print("core types:")
    rows = []
    for name in core_type_names():
        core = get_core_type(name)
        rows.append(
            {
                "type": core.name,
                "perf x": f"{core.perf_scale:.2f}",
                "dyn x": f"{core.dynamic_scale:.2f}",
                "leak x": f"{core.leakage_scale:.2f}",
                "area x": f"{core.area_scale:.2f}",
                "description": core.description,
            }
        )
    print(format_table(rows))
    return 0


def _tech_frontier(args) -> int:
    from repro.analysis.report import (
        TECH_DEFAULT_CAPS_W,
        TECH_DEFAULT_MIXES,
        TECH_DEFAULT_NODES,
        tech_frontier_rows,
        tech_section,
        tech_study_rows,
    )
    from repro.orchestrator.executor import run_campaign
    from repro.orchestrator.spec import expand_grid
    from repro.tech import TechSpec, get_node

    nodes = tuple(args.nodes) if args.nodes else TECH_DEFAULT_NODES
    mixes = tuple(args.mixes) if args.mixes else TECH_DEFAULT_MIXES
    caps = tuple(args.caps) if args.caps else TECH_DEFAULT_CAPS_W
    # Vet the axes up front so a typo fails before the campaign starts.
    for node in nodes:
        get_node(node, args.variant)
    sweep = [
        TechSpec(node=node, variant=args.variant, cores=mix)
        for node in nodes
        for mix in mixes
    ]
    specs = expand_grid(
        [args.app],
        scales=[args.scale],
        seeds=[args.seed],
        num_workers=[args.num_workers],
        tech=sweep,
    )
    campaign = run_campaign(
        specs, jobs=args.jobs, cache=args.cache_dir, progress=_print_progress,
    )
    campaign.raise_failures()
    tech_studies = {}
    for spec in specs:
        tech = spec.tech_spec()
        label = tech.label if tech is not None else "default (65nm)"
        tech_studies[label] = campaign.study(spec)

    print(
        f"{args.app}: {len(specs)} technology configurations "
        f"({len(nodes)} nodes x {len(mixes)} mixes, variant {args.variant})"
    )
    print("\nDark-silicon frontier (active cores / throughput under a cap):")
    print(
        format_table(
            tech_frontier_rows(nodes, mixes, caps, args.num_workers, args.variant)
        )
    )
    print("\nMeasured sweep (vfi2_winoc per technology configuration):")
    print(format_table(tech_study_rows(tech_studies)))

    if args.report:
        text = tech_section(
            tech_studies, nodes=nodes, mixes=mixes, caps_w=caps,
            num_cores=args.num_workers, variant=args.variant,
        )
        with open(args.report, "w") as handle:
            handle.write(text)
        print(f"\ntech report written to {args.report}")
    if args.manifest:
        import pathlib

        manifest_path = pathlib.Path(args.manifest)
        campaign.manifest.save(manifest_path)
        trace_path = manifest_path.with_suffix(".trace.json")
        campaign.manifest.save_trace(trace_path)
        print(f"run manifest saved to {manifest_path} (+ {trace_path})")
    return 0


def _tech_export(args) -> int:
    from repro.analysis.report import (
        TECH_DEFAULT_CAPS_W,
        TECH_DEFAULT_MIXES,
        tech_section,
    )
    from repro.tech import (
        CORE_TYPES,
        frontier,
        get_core_type,
        get_node,
        node_names,
    )

    nodes = tuple(args.nodes) if args.nodes else tuple(node_names())
    if args.format == "json":
        import json

        payload = {
            "variant": args.variant,
            "nodes": [
                get_node(node, args.variant).to_dict() for node in nodes
            ],
            "core_types": {
                name: {
                    "perf_scale": get_core_type(name).perf_scale,
                    "dynamic_scale": get_core_type(name).dynamic_scale,
                    "leakage_scale": get_core_type(name).leakage_scale,
                    "area_scale": get_core_type(name).area_scale,
                }
                for name in sorted(CORE_TYPES)
            },
            "frontier": frontier(
                nodes, TECH_DEFAULT_MIXES, TECH_DEFAULT_CAPS_W,
                variant=args.variant,
            ),
        }
        text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    else:
        text = tech_section(nodes=nodes, variant=args.variant)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"tech tables written to {args.output}")
    else:
        print(text, end="")
    return 0


def _cmd_tech(args) -> int:
    handlers = {
        "list": _tech_list,
        "frontier": _tech_frontier,
        "export": _tech_export,
    }
    return handlers[args.tech_command](args)


#: Die sizes the ``power list`` / ``power export`` ladders price.
POWER_DIE_SIZES = (16, 64, 256)


def _power_ladder_rows(sizes) -> list:
    from repro.power import chip_peak_power_w, default_caps_w

    rows = []
    for workers in sizes:
        peak = chip_peak_power_w(workers)
        caps = default_caps_w(workers)
        rows.append(
            {
                "cores": workers,
                "est. peak (W)": f"{peak:.1f}",
                "default caps (W)": " ".join(f"{cap:g}" for cap in caps),
            }
        )
    return rows


def _power_list(args) -> int:
    from repro.power import DEFAULT_CAP_FRACTIONS

    sizes = tuple(args.num_workers) if args.num_workers else POWER_DIE_SIZES
    print(
        "default sweep caps are fractions of the estimated uncapped chip "
        "peak: " + " ".join(f"{f:g}" for f in DEFAULT_CAP_FRACTIONS)
    )
    print(format_table(_power_ladder_rows(sizes)))
    return 0


def _power_sweep(args) -> int:
    from repro.analysis.report import power_frontier_table, power_section
    from repro.power import default_caps_w, run_cap_sweep

    fault_plan = None
    if args.plan is not None:
        from repro.faults import FaultPlan

        with open(args.plan) as handle:
            fault_plan = FaultPlan.from_json(handle.read())
    caps = tuple(args.caps) if args.caps else default_caps_w(args.num_workers)
    cap_studies, campaign = run_cap_sweep(
        args.app, caps_w=caps, scale=args.scale, seed=args.seed,
        num_workers=args.num_workers, fault_plan=fault_plan,
        jobs=args.jobs, cache=args.cache_dir, progress=_print_progress,
    )
    composed = ", composed with fault plan" if fault_plan is not None else ""
    print(
        f"{args.app}: uncapped baseline + {len(caps)} cap levels "
        f"({args.num_workers} cores{composed})"
    )
    print("\nPower-cap frontier (vfi2_winoc, loosest cap first):")
    print(format_table(power_frontier_table(cap_studies)))

    if args.report:
        text = power_section(cap_studies)
        with open(args.report, "w") as handle:
            handle.write(text)
        print(f"\npower report written to {args.report}")
    if args.manifest:
        import pathlib

        manifest_path = pathlib.Path(args.manifest)
        campaign.manifest.save(manifest_path)
        trace_path = manifest_path.with_suffix(".trace.json")
        campaign.manifest.save_trace(trace_path)
        print(f"run manifest saved to {manifest_path} (+ {trace_path})")
    return 0


def _power_export(args) -> int:
    from repro.power import DEFAULT_CAP_FRACTIONS

    sizes = tuple(args.num_workers) if args.num_workers else POWER_DIE_SIZES
    if args.format == "json":
        import json

        from repro.power import chip_peak_power_w, default_caps_w

        payload = {
            "cap_fractions": list(DEFAULT_CAP_FRACTIONS),
            "dies": [
                {
                    "num_workers": workers,
                    "estimated_peak_w": chip_peak_power_w(workers),
                    "default_caps_w": list(default_caps_w(workers)),
                }
                for workers in sizes
            ],
        }
        text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    else:
        from repro.analysis.report import _md_table

        text = (
            "## Power-cap ladders — estimated peaks and default sweep "
            "caps\n\n"
            "Default sweep fractions of the estimated uncapped chip "
            "peak: "
            + ", ".join(f"{f:g}" for f in DEFAULT_CAP_FRACTIONS)
            + ".\n\n"
            + _md_table(
                _power_ladder_rows(sizes),
                ["cores", "est. peak (W)", "default caps (W)"],
            )
            + "\n"
        )
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"power ladders written to {args.output}")
    else:
        print(text, end="")
    return 0


def _cmd_power(args) -> int:
    handlers = {
        "list": _power_list,
        "sweep": _power_sweep,
        "export": _power_export,
    }
    return handlers[args.power_command](args)


def _cmd_topology(args) -> int:
    from repro.core.experiment import NVFI_MESH
    from repro.core.platforms import build_vfi_winoc
    from repro.noc.visualize import describe_topology, render_vf_map
    from repro.utils.rng import spawn_seed

    study = run_app_study(args.app, scale=args.scale, seed=args.seed)
    rate = (
        study.design.traffic * 8.0 / study.result(NVFI_MESH).total_time_s
    )
    platform = build_vfi_winoc(
        study.design,
        "vfi2",
        methodology=args.methodology,
        seed=spawn_seed(args.seed, args.app, "winoc"),
        traffic_rate_bps=rate,
    )
    print(describe_topology(platform.topology, list(platform.layout.node_cluster)))
    print()
    print("V/F floorplan (VFI 2):")
    print(render_vf_map(platform.layout, platform.vf_points))
    return 0


_COMMANDS = {
    "list-apps": lambda args: _cmd_list_apps(),
    "run-study": _cmd_run_study,
    "design": _cmd_design,
    "report": _cmd_report,
    "sweep": _cmd_sweep,
    "trace": _cmd_trace,
    "faults": _cmd_faults,
    "cluster": _cmd_cluster,
    "tech": _cmd_tech,
    "power": _cmd_power,
    "topology": _cmd_topology,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    handler = _COMMANDS.get(args.command)
    if handler is None:
        raise AssertionError(f"unhandled command {args.command!r}")
    try:
        return handler(args)
    except (ValueError, KeyError, OSError, RuntimeError) as exc:
        # Bad arguments that argparse cannot vet (out-of-range scales,
        # non-square die sizes, unwritable output paths, failed campaign
        # units): one line on stderr, nonzero exit, no traceback.
        if isinstance(exc, OSError):
            message = str(exc)  # args[0] alone would be the bare errno
        else:
            message = exc.args[0] if exc.args else exc
        print(f"repro: error: {message}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
