"""Per-job simulation resolution, deduped through the StudyCache.

Every job the cluster dispatches (and every estimate a cost-aware policy
asks for) resolves to one :class:`~repro.orchestrator.spec.StudySpec`
simulation.  The :class:`CostModel` funnels all of those resolutions
through one path: an in-process memo, then the persistent
:class:`~repro.orchestrator.cache.StudyCache`, then an actual pipeline
run -- and counts each outcome.  A replayed cluster run against a warm
cache therefore re-simulates **zero** per-job studies, and the counters
prove it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Union

from repro.cluster.fleet import ChipSpec
from repro.cluster.jobs import ClusterJob
from repro.core.experiment import AppStudy
from repro.orchestrator.cache import StudyCache
from repro.orchestrator.spec import StudySpec


@dataclass(frozen=True)
class JobEstimate:
    """Predicted cost of one job on one chip class."""

    service_s: float
    energy_j: float

    @property
    def edp(self) -> float:
        return self.energy_j * self.service_s


class CostModel:
    """Resolve (job, chip) pairs to simulated studies, with dedup stats."""

    def __init__(self, cache: Optional[Union[StudyCache, str]] = None):
        if isinstance(cache, (str, bytes)) or hasattr(cache, "__fspath__"):
            cache = StudyCache(cache)
        self.cache = cache
        self._memo: Dict[StudySpec, AppStudy] = {}
        #: Units actually simulated by this model (cold resolutions).
        self.computed = 0
        #: Units served by the persistent StudyCache.
        self.cache_hits = 0
        #: Units served by the in-process memo (repeat jobs in one run).
        self.memo_hits = 0

    # ------------------------------------------------------------------ #

    @property
    def unique_specs(self) -> int:
        return len(self._memo)

    def study(self, spec: StudySpec) -> AppStudy:
        """The study for *spec*: memo -> cache -> simulate."""
        study = self._memo.get(spec)
        if study is not None:
            self.memo_hits += 1
            return study
        if self.cache is not None:
            study = self.cache.get(spec)
            if study is not None:
                self.cache_hits += 1
                self._memo[spec] = study
                return study
        study = spec.run()
        self.computed += 1
        if self.cache is not None:
            self.cache.put(spec, study)
        self._memo[spec] = study
        return study

    def estimate(self, job: ClusterJob, chip: ChipSpec) -> JobEstimate:
        """Predicted service time and energy of *job* on *chip*.

        The "estimate" is the exact simulated outcome -- the simulator
        *is* the cost model, and the StudyCache makes asking cheap.
        """
        result = self.study(job.spec_for(chip)).result(chip.config)
        return JobEstimate(
            service_s=float(result.total_time_s),
            energy_j=float(result.total_energy_j),
        )

    def stats(self) -> Dict[str, int]:
        return {
            "computed": int(self.computed),
            "cache_hits": int(self.cache_hits),
            "memo_hits": int(self.memo_hits),
            "unique_specs": int(self.unique_specs),
        }
