"""Per-job simulation resolution, deduped through the StudyCache.

Every job the cluster dispatches (and every estimate a cost-aware policy
asks for) resolves to one :class:`~repro.orchestrator.spec.StudySpec`
simulation.  The :class:`CostModel` funnels all of those resolutions
through one path: an in-process memo, then the persistent
:class:`~repro.orchestrator.cache.StudyCache`, then an actual pipeline
run -- and counts each outcome.  A replayed cluster run against a warm
cache therefore re-simulates **zero** per-job studies, and the counters
prove it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Union

from repro.cluster.fleet import ChipSpec
from repro.cluster.jobs import ClusterJob
from repro.core.experiment import AppStudy
from repro.orchestrator.cache import StudyCache
from repro.orchestrator.spec import StudySpec


@dataclass(frozen=True)
class JobEstimate:
    """Predicted cost of one job on one chip class."""

    service_s: float
    energy_j: float

    @property
    def edp(self) -> float:
        return self.energy_j * self.service_s


@dataclass(frozen=True)
class SpeedStep:
    """One DVFS operating point a speed-scaling policy may dispatch at.

    Studies simulate at the chip's nominal point; a slower rail scales
    the simulated outcome analytically: service time stretches with the
    clock (``f_nom / f``) and energy shrinks with the square of the rail
    voltage (dynamic energy ~ C V^2 per switched capacitance -- the work,
    not the time, fixes the switching count; per arXiv:1402.2810 the
    energy-per-work is what speed scaling trades against the deadline).
    """

    frequency_hz: float
    voltage_v: float
    nominal_frequency_hz: float
    nominal_voltage_v: float

    @property
    def time_scale(self) -> float:
        return self.nominal_frequency_hz / self.frequency_hz

    @property
    def energy_scale(self) -> float:
        return (self.voltage_v / self.nominal_voltage_v) ** 2

    @property
    def is_nominal(self) -> bool:
        return self.frequency_hz == self.nominal_frequency_hz

    @property
    def label(self) -> str:
        return f"{self.voltage_v:.2f}V/{self.frequency_hz / 1e9:g}GHz"


def scale_estimate(estimate: JobEstimate, step: Optional[SpeedStep]) -> JobEstimate:
    """*estimate* re-timed at DVFS *step* (``None`` = nominal)."""
    if step is None or step.is_nominal:
        return estimate
    return JobEstimate(
        service_s=estimate.service_s * step.time_scale,
        energy_j=estimate.energy_j * step.energy_scale,
    )


class CostModel:
    """Resolve (job, chip) pairs to simulated studies, with dedup stats."""

    def __init__(self, cache: Optional[Union[StudyCache, str]] = None):
        if isinstance(cache, (str, bytes)) or hasattr(cache, "__fspath__"):
            cache = StudyCache(cache)
        self.cache = cache
        self._memo: Dict[StudySpec, AppStudy] = {}
        #: Units actually simulated by this model (cold resolutions).
        self.computed = 0
        #: Units served by the persistent StudyCache.
        self.cache_hits = 0
        #: Units served by the in-process memo (repeat jobs in one run).
        self.memo_hits = 0
        #: Batched prefetch rounds run (the parallel cost-model front).
        self.batches = 0
        #: Units resolved through prefetch batches (subset of the above).
        self.prefetched = 0

    # ------------------------------------------------------------------ #

    @property
    def unique_specs(self) -> int:
        return len(self._memo)

    def study(self, spec: StudySpec) -> AppStudy:
        """The study for *spec*: memo -> cache -> simulate."""
        study = self._memo.get(spec)
        if study is not None:
            self.memo_hits += 1
            return study
        if self.cache is not None:
            study = self.cache.get(spec)
            if study is not None:
                self.cache_hits += 1
                self._memo[spec] = study
                return study
        study = spec.run()
        self.computed += 1
        if self.cache is not None:
            self.cache.put(spec, study)
        self._memo[spec] = study
        return study

    def estimate(self, job: ClusterJob, chip: ChipSpec) -> JobEstimate:
        """Predicted service time and energy of *job* on *chip*.

        The "estimate" is the exact simulated outcome -- the simulator
        *is* the cost model, and the StudyCache makes asking cheap.
        """
        result = self.study(job.spec_for(chip)).result(chip.config)
        return JobEstimate(
            service_s=float(result.total_time_s),
            energy_j=float(result.total_energy_j),
        )

    def prefetch(
        self,
        specs: Iterable[StudySpec],
        jobs: int = 1,
        retries: int = 1,
    ) -> Dict[str, int]:
        """Resolve *specs* in one batch through the orchestrator fan-out.

        The batch entry point of the parallel cost-model front: distinct
        (study, chip-class) units the run will need are resolved through
        :func:`repro.orchestrator.executor.resolve_studies` -- process
        fan-out when ``jobs > 1`` -- and memoized, so the event loop's
        per-dispatch estimates are pure dictionary lookups afterwards.
        Counters fold into :meth:`stats` exactly as if the units had
        resolved serially (computed / cache_hits), plus batch counters.
        """
        from repro.orchestrator.executor import resolve_studies

        misses = []
        seen = set()
        for spec in specs:
            if spec in self._memo or spec in seen:
                continue
            seen.add(spec)
            misses.append(spec)
        self.batches += 1
        if not misses:
            return {"batch_size": 0, "computed": 0, "cache_hits": 0}
        studies, statuses = resolve_studies(
            misses, jobs=jobs, cache=self.cache, retries=retries
        )
        computed = sum(1 for s in statuses.values() if s == "computed")
        cached = len(misses) - computed
        self.computed += computed
        self.cache_hits += cached
        self.prefetched += len(misses)
        self._memo.update(studies)
        return {
            "batch_size": len(misses),
            "computed": computed,
            "cache_hits": cached,
        }

    def stats(self) -> Dict[str, int]:
        out = {
            "computed": int(self.computed),
            "cache_hits": int(self.cache_hits),
            "memo_hits": int(self.memo_hits),
            "unique_specs": int(self.unique_specs),
        }
        # Batch-front counters appear only once a prefetch ran, so
        # pre-engine study_stats dictionaries keep their exact shape.
        if self.batches:
            out["batches"] = int(self.batches)
            out["prefetched"] = int(self.prefetched)
        return out
