"""Per-job and fleet-level SLO metrics for one cluster run.

:func:`slo_report` folds a run's :class:`~repro.cluster.jobs.JobRecord`
list into an :class:`SloReport`: throughput, latency percentiles, queue
waits, deadline hit rate, rejection (backpressure) counts, energy and
fleet EDP, plus per-chip utilization.  Everything is computed with plain
arithmetic over builtins -- no numpy -- so a report serialized through
canonical JSON is byte-identical across replays by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.cluster.fleet import Fleet
from repro.cluster.jobs import COMPLETED, JobRecord
from repro.utils.jsonutil import to_builtin


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile over pre-sorted values (q in [0,1])."""
    if not sorted_values:
        return 0.0
    if len(sorted_values) == 1:
        return float(sorted_values[0])
    position = q * (len(sorted_values) - 1)
    low = int(position)
    high = min(low + 1, len(sorted_values) - 1)
    weight = position - low
    return float(
        sorted_values[low] * (1.0 - weight) + sorted_values[high] * weight
    )


@dataclass
class SloReport:
    """Fleet-level service-level metrics of one cluster run."""

    policy: str
    num_jobs: int = 0
    admitted: int = 0
    rejected: int = 0
    completed: int = 0
    #: Last completion instant (the run's simulated makespan).
    makespan_s: float = 0.0
    #: Completed jobs per simulated second.
    throughput_jobs_per_s: float = 0.0
    latency_mean_s: float = 0.0
    latency_p50_s: float = 0.0
    latency_p95_s: float = 0.0
    latency_max_s: float = 0.0
    queue_wait_mean_s: float = 0.0
    queue_wait_max_s: float = 0.0
    transfer_total_s: float = 0.0
    #: Jobs that carried a deadline and completed.
    deadlined: int = 0
    deadlines_met: int = 0
    total_energy_j: float = 0.0
    energy_per_job_j: float = 0.0
    #: total energy x makespan: the fleet-level EDP analogue.
    fleet_edp: float = 0.0
    #: chip_id (as str, for JSON) -> busy fraction of the makespan.
    chip_utilization: Dict[str, float] = field(default_factory=dict)
    #: Closed-loop re-submissions across the run (attempts beyond the
    #: first, whether the job eventually landed or gave up).
    retries: int = 0
    #: Checkpoint-and-requeue evictions across the run.
    preemptions: int = 0
    #: Staging time burned on transfers a preemption cut short.
    wasted_transfer_s: float = 0.0

    @property
    def deadline_hit_rate(self) -> float:
        if self.deadlined == 0:
            return 1.0
        return self.deadlines_met / self.deadlined

    @property
    def rejection_rate(self) -> float:
        if self.num_jobs == 0:
            return 0.0
        return self.rejected / self.num_jobs

    @property
    def goodput_jobs_per_s(self) -> float:
        """Completions that *met their obligations* per simulated second
        (completed jobs minus deadline misses, over the makespan)."""
        if self.makespan_s <= 0.0:
            return 0.0
        missed = self.deadlined - self.deadlines_met
        return (self.completed - missed) / self.makespan_s

    def to_dict(self) -> Dict:
        out = to_builtin(
            {
                "policy": self.policy,
                "num_jobs": self.num_jobs,
                "admitted": self.admitted,
                "rejected": self.rejected,
                "completed": self.completed,
                "makespan_s": self.makespan_s,
                "throughput_jobs_per_s": self.throughput_jobs_per_s,
                "latency_mean_s": self.latency_mean_s,
                "latency_p50_s": self.latency_p50_s,
                "latency_p95_s": self.latency_p95_s,
                "latency_max_s": self.latency_max_s,
                "queue_wait_mean_s": self.queue_wait_mean_s,
                "queue_wait_max_s": self.queue_wait_max_s,
                "transfer_total_s": self.transfer_total_s,
                "deadlined": self.deadlined,
                "deadlines_met": self.deadlines_met,
                "deadline_hit_rate": self.deadline_hit_rate,
                "rejection_rate": self.rejection_rate,
                "total_energy_j": self.total_energy_j,
                "energy_per_job_j": self.energy_per_job_j,
                "fleet_edp": self.fleet_edp,
                "chip_utilization": dict(self.chip_utilization),
            }
        )
        # Closed-loop / preemption aggregates appear only when the run
        # exercised them, so open-loop non-preemptive reports (and the
        # golden digests over them) keep their exact legacy bytes.
        if self.retries:
            out["retries"] = int(self.retries)
        if self.preemptions:
            out["preemptions"] = int(self.preemptions)
            out["goodput_jobs_per_s"] = self.goodput_jobs_per_s
        if self.wasted_transfer_s:
            out["wasted_transfer_s"] = self.wasted_transfer_s
        return out

    @classmethod
    def from_dict(cls, data: Dict) -> "SloReport":
        data = to_builtin(dict(data))
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in data.items() if k in known})


def slo_report(
    policy: str, records: Sequence[JobRecord], fleet: Fleet
) -> SloReport:
    """Fold job records into the fleet-level SLO report."""
    report = SloReport(policy=policy, num_jobs=len(records))
    done: List[JobRecord] = []
    busy: Dict[int, float] = {chip.chip_id: 0.0 for chip in fleet}
    for record in records:
        if record.attempts > 1:
            report.retries += record.attempts - 1
        report.preemptions += record.preemptions
        report.wasted_transfer_s += record.wasted_transfer_s
        if record.rejected:
            report.rejected += 1
            continue
        report.admitted += 1
        if record.status == COMPLETED and record.completed_s is not None:
            done.append(record)
            report.completed += 1
            report.total_energy_j += record.energy_j
            report.transfer_total_s += record.transfer_s
            segments = record.extra.get("segments")
            if segments:
                # A preempted job ran on several chips; attribute each
                # executed segment (and its surviving transfer time)
                # where it actually ran.
                for segment in segments:
                    busy[segment["chip_id"]] = busy.get(
                        segment["chip_id"], 0.0
                    ) + (segment["transfer_s"] + segment["service_s"])
            elif record.chip_id is not None:
                busy[record.chip_id] = busy.get(record.chip_id, 0.0) + (
                    record.transfer_s + record.service_s
                )
            met = record.deadline_met
            if met is not None:
                report.deadlined += 1
                if met:
                    report.deadlines_met += 1
    if not done:
        return report

    report.makespan_s = max(r.completed_s for r in done)
    latencies = sorted(r.latency_s for r in done)
    waits = [r.queue_wait_s for r in done]
    report.latency_mean_s = sum(latencies) / len(latencies)
    report.latency_p50_s = percentile(latencies, 0.50)
    report.latency_p95_s = percentile(latencies, 0.95)
    report.latency_max_s = latencies[-1]
    report.queue_wait_mean_s = sum(waits) / len(waits)
    report.queue_wait_max_s = max(waits)
    if report.makespan_s > 0.0:
        report.throughput_jobs_per_s = report.completed / report.makespan_s
        report.chip_utilization = {
            str(chip_id): busy_s / report.makespan_s
            for chip_id, busy_s in sorted(busy.items())
        }
    report.energy_per_job_j = report.total_energy_j / report.completed
    report.fleet_edp = report.total_energy_j * report.makespan_s
    return report
