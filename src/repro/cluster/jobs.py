"""Cluster jobs and their lifecycle records.

A :class:`ClusterJob` is one MapReduce job submitted to the cluster
service: which app to run, at what functional scale and dataset seed,
when it arrives, how urgent it is (priority), and by when it must finish
(absolute deadline).  Jobs are frozen and canonicalized at construction
-- exactly like :class:`repro.orchestrator.spec.StudySpec`, which a job
resolves to once the scheduler has placed it on a chip.

A :class:`JobRecord` is the audited lifecycle of one job through the
service: admission -> queue -> dispatch -> complete (or rejection at
admission when the bounded queue is full).  Records are plain data and
round-trip through canonical JSON, so a recorded cluster run can be
replayed and compared byte for byte.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, Optional, TYPE_CHECKING

from repro.apps.registry import canonical_app_name
from repro.orchestrator.spec import StudySpec
from repro.utils.jsonutil import to_builtin

if TYPE_CHECKING:
    from repro.cluster.fleet import ChipSpec

#: Job lifecycle statuses.  ``REJECTED`` and ``COMPLETED`` are the only
#: terminal statuses; ``RETRYING`` (closed-loop backoff pending) and
#: ``PREEMPTED`` (checkpointed and requeued) are transient and never
#: survive to the end of a run.
REJECTED = "rejected"
COMPLETED = "completed"
RETRYING = "retrying"
PREEMPTED = "preempted"

#: Statuses a finished run may leave on a record.
TERMINAL_STATUSES = (COMPLETED, REJECTED)


@dataclass(frozen=True)
class ClusterJob:
    """One MapReduce job arriving at the cluster."""

    job_id: int
    app: str
    arrival_s: float
    scale: float = 0.05
    seed: int = 7
    #: Larger is more urgent; ties break on arrival order then job id.
    priority: int = 0
    #: Absolute completion deadline (simulated seconds), or ``None`` for
    #: a best-effort job.
    deadline_s: Optional[float] = None
    #: Input dataset size, charged as transfer time when the job lands on
    #: a chip where the dataset is not already resident.
    input_mb: float = 64.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "job_id", int(self.job_id))
        object.__setattr__(self, "app", canonical_app_name(self.app))
        object.__setattr__(self, "arrival_s", float(self.arrival_s))
        object.__setattr__(self, "scale", float(self.scale))
        object.__setattr__(self, "seed", int(self.seed))
        object.__setattr__(self, "priority", int(self.priority))
        if self.deadline_s is not None:
            object.__setattr__(self, "deadline_s", float(self.deadline_s))
        object.__setattr__(self, "input_mb", float(self.input_mb))
        if self.job_id < 0:
            raise ValueError(f"job_id must be >= 0, got {self.job_id}")
        if self.arrival_s < 0.0:
            raise ValueError(f"arrival_s must be >= 0, got {self.arrival_s}")
        if not 0.0 < self.scale <= 1.0:
            raise ValueError(f"scale must be in (0, 1], got {self.scale!r}")
        if self.deadline_s is not None and self.deadline_s <= self.arrival_s:
            raise ValueError(
                f"deadline_s ({self.deadline_s}) must be after arrival_s "
                f"({self.arrival_s})"
            )
        if self.input_mb < 0.0:
            raise ValueError(f"input_mb must be >= 0, got {self.input_mb}")

    # ------------------------------------------------------------------ #

    @property
    def dataset_key(self) -> str:
        """Identity of the job's input dataset (locality/residency unit)."""
        return f"{self.app}@{self.scale:g}#{self.seed}"

    def spec_for(self, chip: "ChipSpec") -> StudySpec:
        """The per-chip simulation unit this job resolves to.

        Jobs with the same (app, scale, seed) landing on chips of the
        same class collapse to one :class:`StudySpec` -- which is how the
        orchestrator's StudyCache dedups per-job simulations.
        """
        return StudySpec(
            app=self.app,
            scale=self.scale,
            seed=self.seed,
            num_workers=chip.num_workers,
            winoc_methodology=chip.winoc_methodology,
            include_vfi1=chip.needs_vfi1,
            fault_plan=chip.fault_plan,
            tech=chip.tech,
            power_cap=chip.power_cap,
        )

    def to_dict(self) -> Dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Dict) -> "ClusterJob":
        return cls(**to_builtin(dict(data)))

    @property
    def label(self) -> str:
        parts = [f"job{self.job_id}", self.app, f"t={self.arrival_s:.1f}s"]
        if self.priority:
            parts.append(f"p{self.priority}")
        if self.deadline_s is not None:
            parts.append(f"due={self.deadline_s:.1f}s")
        return " ".join(parts)


@dataclass
class JobRecord:
    """How one job moved through admission -> queue -> dispatch -> complete.

    All timestamps are absolute simulated seconds.  Rejected jobs carry
    only ``arrival_s`` (admission is where backpressure acts); completed
    jobs carry the full timeline plus the measured service outcome.
    """

    job: ClusterJob
    status: str = COMPLETED
    chip_id: Optional[int] = None
    admitted_s: Optional[float] = None
    dispatched_s: Optional[float] = None
    completed_s: Optional[float] = None
    #: Input staging time charged before execution (0 when resident).
    transfer_s: float = 0.0
    #: Simulated makespan of the job's study on its chip.
    service_s: float = 0.0
    energy_j: float = 0.0
    #: Admission attempts made (1 = admitted or rejected on arrival;
    #: closed-loop retries increment it).
    attempts: int = 1
    #: Times this job was checkpointed off a chip and requeued.
    preemptions: int = 0
    #: Staging time spent on transfers that a preemption cut short
    #: (the only work a checkpoint cannot preserve).
    wasted_transfer_s: float = 0.0
    extra: Dict = field(default_factory=dict)

    # ------------------------------------------------------------------ #

    @property
    def rejected(self) -> bool:
        return self.status == REJECTED

    @property
    def queue_wait_s(self) -> float:
        """Time spent queued between admission and dispatch."""
        if self.dispatched_s is None or self.admitted_s is None:
            return 0.0
        return self.dispatched_s - self.admitted_s

    @property
    def latency_s(self) -> float:
        """Arrival-to-completion sojourn time (0 for rejected jobs)."""
        if self.completed_s is None:
            return 0.0
        return self.completed_s - self.job.arrival_s

    @property
    def deadline_met(self) -> Optional[bool]:
        """Whether the deadline was met; ``None`` for best-effort jobs
        and for rejected jobs (a rejection is not a deadline miss)."""
        if self.job.deadline_s is None or self.completed_s is None:
            return None
        return self.completed_s <= self.job.deadline_s

    def to_dict(self) -> Dict:
        out = {
            "job": self.job.to_dict(),
            "status": self.status,
            "chip_id": self.chip_id,
            "admitted_s": self.admitted_s,
            "dispatched_s": self.dispatched_s,
            "completed_s": self.completed_s,
            "transfer_s": self.transfer_s,
            "service_s": self.service_s,
            "energy_j": self.energy_j,
            "extra": dict(self.extra),
        }
        # Retry/preemption fields appeared after the v1 schema; they are
        # omitted at their defaults so open-loop, non-preemptive runs
        # (and their replay digests) stay byte-identical to records
        # written before the event engine existed.
        if self.attempts != 1:
            out["attempts"] = self.attempts
        if self.preemptions != 0:
            out["preemptions"] = self.preemptions
        if self.wasted_transfer_s != 0.0:
            out["wasted_transfer_s"] = self.wasted_transfer_s
        return to_builtin(out)

    @classmethod
    def from_dict(cls, data: Dict) -> "JobRecord":
        data = to_builtin(dict(data))
        return cls(
            job=ClusterJob.from_dict(data["job"]),
            status=data["status"],
            chip_id=data["chip_id"],
            admitted_s=data["admitted_s"],
            dispatched_s=data["dispatched_s"],
            completed_s=data["completed_s"],
            transfer_s=float(data["transfer_s"]),
            service_s=float(data["service_s"]),
            energy_j=float(data["energy_j"]),
            attempts=int(data.get("attempts", 1)),
            preemptions=int(data.get("preemptions", 0)),
            wasted_transfer_s=float(data.get("wasted_transfer_s", 0.0)),
            extra=dict(data.get("extra", {})),
        )
