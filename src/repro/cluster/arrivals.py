"""Seeded arrival traces: the reproducible workload unit.

An :class:`ArrivalTrace` is a canonically ordered sequence of
:class:`~repro.cluster.jobs.ClusterJob` arrivals.  Traces are generated
from a seed (Poisson arrivals with app/priority/deadline mixes drawn
from decorrelated child streams) or loaded from canonical JSON, and are
content-addressed by sha256 over that JSON -- the same trace always
hashes identically, so a recorded cluster run names exactly the workload
it served.

Preset workloads (:data:`WORKLOADS`) cover the shapes the roadmap asks
for: a steady trickle, an open-loop burst, a priority-skewed mix and a
deadline-tight batch.  Every preset samples dataset seeds from a small
pool on purpose: production streams re-run the same datasets over and
over, which is what makes the StudyCache dedup per-job simulations.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import (
    Callable, Dict, List, Optional, Protocol, Sequence, Tuple, Union,
)

from repro.cluster.jobs import ClusterJob
from repro.utils.jsonutil import canonical_json, to_builtin
from repro.utils.rng import derive_rng, spawn_seed

#: Bump when the trace JSON schema changes (invalidates recorded runs).
TRACE_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class ArrivalTrace:
    """A named, seeded, canonically ordered stream of job arrivals."""

    name: str
    seed: int
    jobs: Tuple[ClusterJob, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "name", str(self.name))
        object.__setattr__(self, "seed", int(self.seed))
        jobs = tuple(
            sorted(self.jobs, key=lambda j: (j.arrival_s, j.job_id))
        )
        object.__setattr__(self, "jobs", jobs)
        ids = [job.job_id for job in jobs]
        if len(set(ids)) != len(ids):
            raise ValueError("job ids must be unique within a trace")

    def __len__(self) -> int:
        return len(self.jobs)

    @property
    def horizon_s(self) -> float:
        """Last arrival instant (0.0 for an empty trace)."""
        return self.jobs[-1].arrival_s if self.jobs else 0.0

    # ------------------------------------------------------------------ #

    def to_dict(self) -> Dict:
        return {
            "schema_version": TRACE_SCHEMA_VERSION,
            "name": self.name,
            "seed": self.seed,
            "jobs": [job.to_dict() for job in self.jobs],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "ArrivalTrace":
        data = to_builtin(dict(data))
        version = data.get("schema_version", TRACE_SCHEMA_VERSION)
        if version != TRACE_SCHEMA_VERSION:
            raise ValueError(
                f"trace schema version {version} not supported "
                f"(expected {TRACE_SCHEMA_VERSION})"
            )
        return cls(
            name=data["name"],
            seed=data["seed"],
            jobs=tuple(ClusterJob.from_dict(j) for j in data["jobs"]),
        )

    def to_json(self) -> str:
        """Canonical JSON encoding (stable bytes; see trace_key)."""
        return canonical_json(self.to_dict())

    @classmethod
    def from_json(cls, text: str) -> "ArrivalTrace":
        return cls.from_dict(json.loads(text))

    @property
    def trace_key(self) -> str:
        """sha256 content address of the canonical JSON encoding."""
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------- #
# generation
# ---------------------------------------------------------------------- #

#: Default app mix: the cheap half of the paper's Table 1, weighted the
#: way a production stream would repeat its popular workloads.
DEFAULT_APP_MIX: Tuple[Tuple[str, float], ...] = (
    ("histogram", 0.4),
    ("wordcount", 0.3),
    ("linear_regression", 0.2),
    ("kmeans", 0.1),
)


def generate_trace(
    name: str,
    seed: int,
    num_jobs: int,
    mean_gap_s: float = 20.0,
    apps: Sequence[Tuple[str, float]] = DEFAULT_APP_MIX,
    scale: float = 0.05,
    dataset_seeds: Sequence[int] = (7, 9),
    priority_levels: int = 1,
    deadline_fraction: float = 0.0,
    deadline_slack_s: Tuple[float, float] = (90.0, 240.0),
    input_mb_range: Tuple[float, float] = (32.0, 128.0),
    burstiness: float = 0.0,
) -> ArrivalTrace:
    """Deterministically sample an arrival trace.

    Arrivals are Poisson with mean gap *mean_gap_s*; ``burstiness`` in
    [0, 1) compresses a random half of the gaps toward zero (open-loop
    bursts) while stretching the rest, preserving the mean load.  Apps,
    dataset seeds, priorities, deadlines and input sizes are drawn from
    decorrelated child streams of *seed*, so changing one knob never
    reshuffles the others.
    """
    if num_jobs < 0:
        raise ValueError(f"num_jobs must be >= 0, got {num_jobs}")
    if not 0.0 <= burstiness < 1.0:
        raise ValueError(f"burstiness must be in [0, 1), got {burstiness}")
    if not dataset_seeds:
        raise ValueError("dataset_seeds must be non-empty")
    names = [app for app, _ in apps]
    weights = [float(w) for _, w in apps]
    total = sum(weights)
    probabilities = [w / total for w in weights]

    gap_rng = derive_rng(spawn_seed(seed, name, "gaps"))
    app_rng = derive_rng(spawn_seed(seed, name, "apps"))
    meta_rng = derive_rng(spawn_seed(seed, name, "meta"))

    jobs: List[ClusterJob] = []
    now = 0.0
    for job_id in range(num_jobs):
        gap = gap_rng.exponential(mean_gap_s)
        if burstiness > 0.0:
            if gap_rng.random() < 0.5:
                gap *= 1.0 - burstiness
            else:
                gap *= 1.0 + burstiness
        now += gap
        app = names[int(app_rng.choice(len(names), p=probabilities))]
        dataset_seed = int(
            dataset_seeds[int(meta_rng.integers(len(dataset_seeds)))]
        )
        priority = int(meta_rng.integers(priority_levels)) if priority_levels > 1 else 0
        deadline: Optional[float] = None
        if deadline_fraction > 0.0 and meta_rng.random() < deadline_fraction:
            low, high = deadline_slack_s
            deadline = now + float(meta_rng.uniform(low, high))
        low_mb, high_mb = input_mb_range
        jobs.append(
            ClusterJob(
                job_id=job_id,
                app=app,
                arrival_s=now,
                scale=scale,
                seed=dataset_seed,
                priority=priority,
                deadline_s=deadline,
                input_mb=float(meta_rng.uniform(low_mb, high_mb)),
            )
        )
    return ArrivalTrace(name=name, seed=seed, jobs=tuple(jobs))


# ---------------------------------------------------------------------- #
# preset workloads
# ---------------------------------------------------------------------- #


def _smoke(seed: int) -> ArrivalTrace:
    """Tiny CI workload: 8 jobs, 2 dataset seeds, a few deadlines."""
    return generate_trace(
        "smoke", seed, num_jobs=8, mean_gap_s=15.0,
        dataset_seeds=(9,), deadline_fraction=0.5, priority_levels=2,
    )


def _steady(seed: int) -> ArrivalTrace:
    """A steady trickle near the fleet's service rate."""
    return generate_trace(
        "steady", seed, num_jobs=24, mean_gap_s=20.0,
        deadline_fraction=0.25, priority_levels=2,
    )


def _burst(seed: int) -> ArrivalTrace:
    """Open-loop burst: same mean load, gaps squeezed into clumps."""
    return generate_trace(
        "burst", seed, num_jobs=32, mean_gap_s=12.0, burstiness=0.85,
        deadline_fraction=0.25, priority_levels=3,
    )


def _priority_mix(seed: int) -> ArrivalTrace:
    """Heavily priority-skewed mix (latency-tier emulation)."""
    return generate_trace(
        "priority_mix", seed, num_jobs=24, mean_gap_s=15.0,
        priority_levels=4, deadline_fraction=0.1,
    )


def _deadline_tight(seed: int) -> ArrivalTrace:
    """Every job carries a deadline, with tight slack."""
    return generate_trace(
        "deadline_tight", seed, num_jobs=24, mean_gap_s=18.0,
        deadline_fraction=1.0, deadline_slack_s=(60.0, 150.0),
        priority_levels=2,
    )


def _heavy(seed: int) -> ArrivalTrace:
    """Sustained pressure: 64 jobs well above the smoke fleet's rate."""
    return generate_trace(
        "heavy", seed, num_jobs=64, mean_gap_s=8.0, burstiness=0.5,
        deadline_fraction=0.3, priority_levels=3,
        dataset_seeds=(7, 9, 11),
    )


# ---------------------------------------------------------------------- #
# sources: how a trace meets the service
# ---------------------------------------------------------------------- #


class Source(Protocol):
    """How jobs reach the cluster, and what happens on backpressure.

    A source wraps one :class:`ArrivalTrace` and answers a single
    question the engine asks when admission fails: *does this job come
    back, and when?*  An open-loop source never re-submits (rejection is
    terminal load shedding); a closed-loop source models clients that
    retry with backoff.
    """

    trace: ArrivalTrace

    def retry_at(
        self, job: ClusterJob, now: float, attempts: int
    ) -> Optional[float]:
        """Next re-submission instant after a failed admission attempt
        number *attempts*, or ``None`` when the job gives up."""
        ...

    def to_dict(self) -> Optional[Dict]:
        """Canonical config for the run record (``None`` = open loop,
        keeping pre-source records byte-identical)."""
        ...


@dataclass(frozen=True)
class OpenLoopSource:
    """The legacy discipline: a backpressured job is shed, terminally."""

    trace: ArrivalTrace

    def retry_at(self, job, now, attempts):
        return None

    def to_dict(self):
        return None


@dataclass(frozen=True)
class ClosedLoopSource:
    """Clients that re-submit backpressured jobs with capped, seeded
    exponential backoff.

    Attempt *k*'s backoff is ``min(cap, base * 2**(k-1))`` scaled by a
    jitter factor in ``[1-jitter, 1+jitter]`` drawn from a stream keyed
    on ``(seed, job_id, attempt)`` -- fully deterministic, and
    independent of event order, so replays reproduce every retry instant
    bit for bit.  After *retry_limit* failed re-submissions the job is
    rejected terminally.
    """

    trace: ArrivalTrace
    retry_limit: int = 3
    backoff_base_s: float = 5.0
    backoff_cap_s: float = 120.0
    jitter: float = 0.5
    seed: int = 7

    def __post_init__(self) -> None:
        object.__setattr__(self, "retry_limit", int(self.retry_limit))
        object.__setattr__(self, "backoff_base_s", float(self.backoff_base_s))
        object.__setattr__(self, "backoff_cap_s", float(self.backoff_cap_s))
        object.__setattr__(self, "jitter", float(self.jitter))
        object.__setattr__(self, "seed", int(self.seed))
        if self.retry_limit < 0:
            raise ValueError(
                f"retry_limit must be >= 0, got {self.retry_limit}"
            )
        if self.backoff_base_s <= 0.0:
            raise ValueError(
                f"backoff_base_s must be > 0, got {self.backoff_base_s}"
            )
        if self.backoff_cap_s < self.backoff_base_s:
            raise ValueError(
                f"backoff_cap_s ({self.backoff_cap_s}) must be >= "
                f"backoff_base_s ({self.backoff_base_s})"
            )
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")

    def backoff_s(self, job: ClusterJob, attempts: int) -> float:
        """The (jittered, capped) backoff after attempt *attempts*."""
        base = min(
            self.backoff_cap_s, self.backoff_base_s * 2.0 ** (attempts - 1)
        )
        if self.jitter == 0.0:
            return base
        rng = derive_rng(
            spawn_seed(self.seed, "retry", str(job.job_id), str(attempts))
        )
        factor = 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return base * factor

    def retry_at(self, job, now, attempts):
        if attempts > self.retry_limit:
            return None
        return now + self.backoff_s(job, attempts)

    def to_dict(self):
        return {
            "kind": "closed",
            "retry_limit": self.retry_limit,
            "backoff_base_s": self.backoff_base_s,
            "backoff_cap_s": self.backoff_cap_s,
            "jitter": self.jitter,
            "seed": self.seed,
        }


def make_source(
    trace: ArrivalTrace, source: Union[str, Source, None] = "open", **kwargs
) -> Source:
    """Build a source over *trace* from a name ('open'/'closed'), an
    existing source (re-wrapped onto *trace*), or ``None`` (open)."""
    if source is None or source == "open":
        if kwargs:
            raise ValueError(
                f"open-loop sources take no options, got {sorted(kwargs)}"
            )
        return OpenLoopSource(trace)
    if source == "closed":
        return ClosedLoopSource(trace, **kwargs)
    if isinstance(source, str):
        raise ValueError(
            f"unknown source kind {source!r}; use 'open' or 'closed'"
        )
    if kwargs:
        raise ValueError("source options only apply to source names")
    if source.trace is not trace and source.trace.trace_key != trace.trace_key:
        raise ValueError("source wraps a different trace")
    return source


def source_from_dict(
    trace: ArrivalTrace, data: Optional[Dict]
) -> Source:
    """Rebuild a run record's source over *trace* (``None`` = open)."""
    if data is None:
        return OpenLoopSource(trace)
    data = dict(data)
    kind = data.pop("kind", "open")
    if kind == "open":
        return OpenLoopSource(trace)
    if kind == "closed":
        return ClosedLoopSource(trace, **data)
    raise ValueError(f"unknown source kind {kind!r} in record")


# ---------------------------------------------------------------------- #
# preset registry
# ---------------------------------------------------------------------- #

#: Preset workload registry: name -> seed -> ArrivalTrace.
WORKLOADS: Dict[str, Callable[[int], ArrivalTrace]] = {
    "smoke": _smoke,
    "steady": _steady,
    "burst": _burst,
    "priority_mix": _priority_mix,
    "deadline_tight": _deadline_tight,
    "heavy": _heavy,
}


def preset_trace(name: str, seed: int = 7) -> ArrivalTrace:
    """Build a preset workload trace by name."""
    if name not in WORKLOADS:
        raise KeyError(
            f"unknown workload {name!r}; known: {sorted(WORKLOADS)}"
        )
    return WORKLOADS[name](seed)
