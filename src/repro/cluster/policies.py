"""Pluggable cluster-level scheduling policies.

Each policy answers one question, deterministically: given the queued
jobs, the currently free chips and a :class:`SchedulingContext`, which
(job, chip) pair dispatches next?  The service calls ``select`` in a
loop until it returns ``None`` or chips/queue run dry, so a policy never
manages time -- only choice order.

Policies register in the :data:`SCHEDULERS` dict (the idiom of the ray
scheduler prototype's ``schedulers`` map) and must be pure functions of
their inputs: same queue, same free chips, same context => same pick.
All tie-breaks bottom out on ``(arrival_s, job_id)`` for jobs and
``chip_id`` for chips, so two runs of the same trace are bit-identical.

Built-in policies:

``fifo``
    Arrival order onto the lowest-numbered free chip.
``priority``
    Highest :attr:`~repro.cluster.jobs.ClusterJob.priority` first
    (FIFO within a level).
``edf``
    Earliest absolute deadline first; best-effort jobs run after every
    deadlined job.  The chip pick minimizes estimated completion
    (transfer + service), so tight deadlines get the fastest landing.
``least_edp``
    Energy-aware: FIFO job order, chip chosen to minimize the job's
    estimated energy-delay product including staging time.
``locality``
    Transfer-cost-aware: prefers (job, chip) pairs whose dataset is
    already resident on the chip (zero staging); falls back to the
    cheapest transfer for the head job.
``power_aware``
    Cap-aware: deadline jobs land on the highest-effective-cap chips
    (uncapped first), best-effort jobs soak up the capped ones, and a
    fleet-level power budget (:attr:`repro.cluster.fleet.Fleet.
    power_budget_w`) holds back dispatches that would push the
    concurrently-busy chips' combined caps over budget.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Protocol, Sequence, Tuple, Type

from repro.cluster.costmodel import JobEstimate, SpeedStep
from repro.cluster.fleet import ChipSpec
from repro.cluster.jobs import ClusterJob


class SchedulingContext(Protocol):
    """What a policy may observe about the cluster mid-run."""

    def estimate(self, job: ClusterJob, chip: ChipSpec) -> JobEstimate:
        """Predicted service time / energy of *job* on *chip*."""
        ...

    def transfer_s(self, job: ClusterJob, chip: ChipSpec) -> float:
        """Staging time for *job*'s input on *chip* (0 when resident)."""
        ...

    def is_resident(self, job: ClusterJob, chip: ChipSpec) -> bool:
        """Whether *job*'s dataset is already resident on *chip*."""
        ...


@dataclass(frozen=True)
class RunningJob:
    """A preemption policy's view of one in-flight execution."""

    job: ClusterJob
    chip: ChipSpec
    dispatched_s: float
    #: When the input transfer finishes (== dispatched_s when resident).
    transfer_end_s: float
    completion_s: float
    #: The engine forbids preempting an execution dispatched at the
    #: current instant (it has made no progress; evicting it could only
    #: thrash), so same-timestamp preemption cascades always terminate.
    preemptable: bool
    #: Engine handle identifying this execution (opaque to policies).
    token: int

    @property
    def deadline_key(self) -> float:
        d = self.job.deadline_s
        return d if d is not None else math.inf


def _fifo_key(job: ClusterJob) -> Tuple[float, int]:
    return (job.arrival_s, job.job_id)


def _edf_key(job: ClusterJob) -> Tuple:
    return (
        job.deadline_s if job.deadline_s is not None else math.inf,
    ) + _fifo_key(job)


def speed_steps_for(chip: ChipSpec) -> Tuple[SpeedStep, ...]:
    """The chip's DVFS ladder as dispatchable speed steps, slowest to
    fastest (nominal last), derived from its technology node."""
    from repro.tech import dvfs_ladder, get_node, paper_node

    spec = chip.tech_spec()
    node = get_node(spec.node, spec.variant) if spec is not None else paper_node()
    ladder = dvfs_ladder(node)
    nominal = ladder[-1]
    return tuple(
        SpeedStep(
            frequency_hz=point.frequency_hz,
            voltage_v=point.voltage_v,
            nominal_frequency_hz=nominal.frequency_hz,
            nominal_voltage_v=nominal.voltage_v,
        )
        for point in ladder
    )


class ClusterScheduler:
    """Base class: FIFO job, lowest-id chip.  Subclasses override
    :meth:`pick_job` and/or :meth:`pick_chip`."""

    #: Registry name (set by :func:`register_scheduler`).
    name = "base"

    def pick_job(
        self,
        now: float,
        queue: Sequence[ClusterJob],
        free_chips: Sequence[ChipSpec],
        ctx: SchedulingContext,
    ) -> ClusterJob:
        return min(queue, key=_fifo_key)

    def pick_chip(
        self,
        now: float,
        job: ClusterJob,
        free_chips: Sequence[ChipSpec],
        ctx: SchedulingContext,
    ) -> ChipSpec:
        return min(free_chips, key=lambda c: c.chip_id)

    def select(
        self,
        now: float,
        queue: Sequence[ClusterJob],
        free_chips: Sequence[ChipSpec],
        ctx: SchedulingContext,
    ) -> Optional[Tuple[ClusterJob, ChipSpec]]:
        """The next dispatch, or ``None`` to leave the queue waiting."""
        if not queue or not free_chips:
            return None
        job = self.pick_job(now, queue, free_chips, ctx)
        chip = self.pick_chip(now, job, free_chips, ctx)
        return job, chip

    # -- engine extension hooks (defaults keep legacy policies inert) -- #

    def speed_for(
        self,
        now: float,
        job: ClusterJob,
        chip: ChipSpec,
        queue: Sequence[ClusterJob],
        ctx: SchedulingContext,
    ) -> Optional[SpeedStep]:
        """DVFS step to dispatch *job* at (``None`` = nominal).  Called
        once per dispatch, after :meth:`select`; *queue* holds the jobs
        left waiting."""
        return None

    def select_preemption(
        self,
        now: float,
        queue: Sequence[ClusterJob],
        running: Sequence[RunningJob],
        ctx: SchedulingContext,
    ) -> Optional[RunningJob]:
        """An in-flight execution to checkpoint and requeue, or ``None``.
        Consulted only when jobs are waiting and no chip is free."""
        return None


class FifoScheduler(ClusterScheduler):
    """Arrival order, lowest-numbered free chip."""


class PriorityScheduler(ClusterScheduler):
    """Strict priority tiers; FIFO within a tier."""

    def pick_job(self, now, queue, free_chips, ctx):
        return min(queue, key=lambda j: (-j.priority,) + _fifo_key(j))


class DeadlineScheduler(ClusterScheduler):
    """Earliest-deadline-first, landing on the fastest-completing chip."""

    def pick_job(self, now, queue, free_chips, ctx):
        return min(
            queue,
            key=lambda j: (
                j.deadline_s if j.deadline_s is not None else math.inf,
            ) + _fifo_key(j),
        )

    def pick_chip(self, now, job, free_chips, ctx):
        return min(
            free_chips,
            key=lambda c: (
                ctx.transfer_s(job, c) + ctx.estimate(job, c).service_s,
                c.chip_id,
            ),
        )


class LeastEdpScheduler(ClusterScheduler):
    """FIFO job order; chip minimizing the job's energy-delay product
    (staging time included in the delay term)."""

    def pick_chip(self, now, job, free_chips, ctx):
        def edp_of(chip: ChipSpec) -> Tuple[float, int]:
            estimate = ctx.estimate(job, chip)
            delay = ctx.transfer_s(job, chip) + estimate.service_s
            return (estimate.energy_j * delay, chip.chip_id)

        return min(free_chips, key=edp_of)


class LocalityScheduler(ClusterScheduler):
    """Transfer-cost-aware: resident (job, chip) pairs dispatch first."""

    def select(self, now, queue, free_chips, ctx):
        if not queue or not free_chips:
            return None
        # First resident pair, scanning jobs in FIFO order.
        for job in sorted(queue, key=_fifo_key):
            resident = [c for c in free_chips if ctx.is_resident(job, c)]
            if resident:
                return job, min(resident, key=lambda c: c.chip_id)
        # Nothing resident anywhere: head job, cheapest transfer.
        job = min(queue, key=_fifo_key)
        chip = min(
            free_chips,
            key=lambda c: (ctx.transfer_s(job, c), c.chip_id),
        )
        return job, chip


class PowerAwareScheduler(ClusterScheduler):
    """Cap-aware placement under an optional fleet power budget.

    Deadline jobs (EDF order) land on the free chip with the *highest*
    effective cap -- uncapped chips first, so tight deadlines never eat
    governor throttling -- while best-effort jobs soak up the capped
    chips (lowest effective cap first).  When the fleet carries a
    ``power_budget_w``, a dispatch that would push the busy chips'
    combined effective caps over budget is held back until completions
    return headroom; with the whole fleet idle the cheapest chip runs
    anyway (a job the budget can never admit must not starve).
    """

    def _chip_power_w(self, chip: ChipSpec) -> float:
        """The chip's effective worst-case draw: its chip-level cap when
        set, else the estimated uncapped peak for its die and node."""
        from repro.power.frontier import chip_peak_power_w

        cap = chip.cap()
        if cap is not None and cap.chip_cap_w is not None:
            return float(cap.chip_cap_w)
        return chip_peak_power_w(chip.num_workers, tech=chip.tech_spec())

    def select(self, now, queue, free_chips, ctx):
        if not queue or not free_chips:
            return None
        candidates = list(free_chips)
        fleet = getattr(ctx, "fleet", None)
        budget = getattr(fleet, "power_budget_w", None)
        all_idle = True
        if budget is not None and fleet is not None:
            free_ids = {chip.chip_id for chip in free_chips}
            drawn = sum(
                self._chip_power_w(chip)
                for chip in fleet
                if chip.chip_id not in free_ids
            )
            all_idle = drawn == 0.0
            headroom = budget - drawn
            affordable = [
                chip for chip in candidates
                if self._chip_power_w(chip) <= headroom
            ]
            if affordable:
                candidates = affordable
            elif not all_idle:
                return None  # wait for completions to return headroom
            else:
                candidates = [
                    min(candidates, key=lambda c: (self._chip_power_w(c), c.chip_id))
                ]
        job = min(
            queue,
            key=lambda j: (
                j.deadline_s if j.deadline_s is not None else math.inf,
            ) + _fifo_key(j),
        )
        def effective_cap(chip: ChipSpec) -> float:
            cap = chip.cap()
            if cap is None or cap.chip_cap_w is None:
                return math.inf
            return float(cap.chip_cap_w)

        if job.deadline_s is not None:
            chip = min(
                candidates, key=lambda c: (-effective_cap(c), c.chip_id)
            )
        else:
            chip = min(
                candidates, key=lambda c: (effective_cap(c), c.chip_id)
            )
        return job, chip


class EdfPreemptScheduler(DeadlineScheduler):
    """EDF with checkpoint-and-requeue preemption.

    Dispatch order is plain EDF.  When deadline jobs are waiting and no
    chip is free, the running job with the *latest* deadline (best-effort
    jobs count as infinitely late) is checkpointed and requeued -- but
    only when the waiting job would miss its deadline if it waited for
    the earliest completion AND still meets it if dispatched now on the
    victim's chip.  Checkpointing preserves service progress (partial
    work resumes, energy is charged exactly once); an unfinished input
    transfer is the only work a preemption discards.
    """

    def select_preemption(self, now, queue, running, ctx):
        deadline_jobs = [j for j in queue if j.deadline_s is not None]
        if not deadline_jobs:
            return None
        challenger = min(deadline_jobs, key=_edf_key)
        candidates = [r for r in running if r.preemptable]
        if not candidates:
            return None
        victim = max(
            candidates,
            key=lambda r: (r.deadline_key, r.completion_s, r.chip.chip_id),
        )
        if challenger.deadline_s >= victim.deadline_key:
            return None  # never preempt a tighter (or equal) deadline
        transfer = ctx.transfer_s(challenger, victim.chip)
        service = ctx.estimate(challenger, victim.chip).service_s
        meets_if_preempted = now + transfer + service <= challenger.deadline_s
        earliest_free = min(r.completion_s for r in running)
        misses_if_waiting = (
            earliest_free + transfer + service > challenger.deadline_s
        )
        if meets_if_preempted and misses_if_waiting:
            return victim
        return None


class SpeedScaleScheduler(ClusterScheduler):
    """Deadline-driven speed scaling (after arXiv:1402.2810).

    Job order is EDF over the *meetable* deadline jobs -- a job whose
    deadline no free chip can meet even at nominal speed is demoted to
    the best-effort pool instead of burning the fleet's fastest slot on
    a lost cause (which is how this policy beats plain EDF's hit rate).
    The chip pick minimizes nominal completion, and the dispatch runs at
    the *slowest* DVFS rail of the chip's ladder that still meets the
    deadline -- but only when no other deadline job is left waiting, so
    stolen slack never cascades into someone else's miss.  Best-effort
    and demoted jobs run FIFO at nominal on the energy-cheapest chip.
    """

    def _completion(self, now, job, chip, ctx) -> float:
        return (
            now
            + ctx.transfer_s(job, chip)
            + ctx.estimate(job, chip).service_s
        )

    def select(self, now, queue, free_chips, ctx):
        if not queue or not free_chips:
            return None
        best = None
        for job in sorted(
            (j for j in queue if j.deadline_s is not None), key=_edf_key
        ):
            chip = min(
                free_chips,
                key=lambda c: (self._completion(now, job, c, ctx), c.chip_id),
            )
            if self._completion(now, job, chip, ctx) <= job.deadline_s:
                best = (job, chip)
                break
        if best is not None:
            return best
        # Best-effort pool: no-deadline jobs and demoted (unmeetable)
        # deadline jobs, FIFO, on the energy-cheapest free chip.
        job = min(queue, key=_fifo_key)
        chip = min(
            free_chips,
            key=lambda c: (ctx.estimate(job, c).energy_j, c.chip_id),
        )
        return job, chip

    def speed_for(self, now, job, chip, queue, ctx):
        if job.deadline_s is None:
            return None
        if any(j.deadline_s is not None for j in queue):
            return None  # contended: leave the slack to the waiting jobs
        transfer = ctx.transfer_s(job, chip)
        service = ctx.estimate(job, chip).service_s
        for step in speed_steps_for(chip):  # slowest first
            if now + transfer + service * step.time_scale <= job.deadline_s:
                return None if step.is_nominal else step
        return None  # not meetable even at nominal: run flat out


class TechAwareScheduler(ClusterScheduler):
    """Route jobs by technology class over a heterogeneous fleet.

    Deadline jobs (EDF order) land on the most advanced free node --
    smallest feature size first, estimated completion breaking ties --
    while best-effort jobs soak up the efficiency classes (big.LITTLE /
    in-order mixes first, then older nodes), minimizing estimated
    energy.  Over :func:`repro.cluster.fleet.hetero_fleet` this sends
    deadline work to the 22 nm parts and background work to the
    big.LITTLE 32 nm chips, per the hybrid job-driven discipline of
    arXiv:1808.08040.
    """

    def pick_job(self, now, queue, free_chips, ctx):
        deadline_jobs = [j for j in queue if j.deadline_s is not None]
        if deadline_jobs:
            return min(deadline_jobs, key=_edf_key)
        return min(queue, key=_fifo_key)

    def pick_chip(self, now, job, free_chips, ctx):
        if job.deadline_s is not None:
            return min(
                free_chips,
                key=lambda c: (
                    c.node_nm,
                    ctx.transfer_s(job, c) + ctx.estimate(job, c).service_s,
                    c.chip_id,
                ),
            )
        return min(
            free_chips,
            key=lambda c: (
                0 if c.is_efficiency_class else 1,
                -c.node_nm,
                ctx.estimate(job, c).energy_j,
                c.chip_id,
            ),
        )


#: The pluggable policy registry (ray-scheduler-prototype style).
SCHEDULERS: Dict[str, Type[ClusterScheduler]] = {}


def register_scheduler(
    name: str, cls: Type[ClusterScheduler]
) -> Type[ClusterScheduler]:
    """Register a policy class under *name* (overwrites are rejected)."""
    if name in SCHEDULERS:
        raise ValueError(f"scheduler {name!r} already registered")
    cls.name = name
    SCHEDULERS[name] = cls
    return cls


register_scheduler("fifo", FifoScheduler)
register_scheduler("priority", PriorityScheduler)
register_scheduler("edf", DeadlineScheduler)
register_scheduler("least_edp", LeastEdpScheduler)
register_scheduler("locality", LocalityScheduler)
register_scheduler("power_aware", PowerAwareScheduler)
register_scheduler("edf_preempt", EdfPreemptScheduler)
register_scheduler("speed_scale", SpeedScaleScheduler)
register_scheduler("tech_aware", TechAwareScheduler)


def create_scheduler(name: str) -> ClusterScheduler:
    """Instantiate a registered policy by name."""
    if name not in SCHEDULERS:
        raise KeyError(
            f"unknown scheduler {name!r}; known: {sorted(SCHEDULERS)}"
        )
    return SCHEDULERS[name]()


def scheduler_names() -> List[str]:
    """Registered policy names, in registration order."""
    return list(SCHEDULERS)
