"""Pluggable cluster-level scheduling policies.

Each policy answers one question, deterministically: given the queued
jobs, the currently free chips and a :class:`SchedulingContext`, which
(job, chip) pair dispatches next?  The service calls ``select`` in a
loop until it returns ``None`` or chips/queue run dry, so a policy never
manages time -- only choice order.

Policies register in the :data:`SCHEDULERS` dict (the idiom of the ray
scheduler prototype's ``schedulers`` map) and must be pure functions of
their inputs: same queue, same free chips, same context => same pick.
All tie-breaks bottom out on ``(arrival_s, job_id)`` for jobs and
``chip_id`` for chips, so two runs of the same trace are bit-identical.

Built-in policies:

``fifo``
    Arrival order onto the lowest-numbered free chip.
``priority``
    Highest :attr:`~repro.cluster.jobs.ClusterJob.priority` first
    (FIFO within a level).
``edf``
    Earliest absolute deadline first; best-effort jobs run after every
    deadlined job.  The chip pick minimizes estimated completion
    (transfer + service), so tight deadlines get the fastest landing.
``least_edp``
    Energy-aware: FIFO job order, chip chosen to minimize the job's
    estimated energy-delay product including staging time.
``locality``
    Transfer-cost-aware: prefers (job, chip) pairs whose dataset is
    already resident on the chip (zero staging); falls back to the
    cheapest transfer for the head job.
``power_aware``
    Cap-aware: deadline jobs land on the highest-effective-cap chips
    (uncapped first), best-effort jobs soak up the capped ones, and a
    fleet-level power budget (:attr:`repro.cluster.fleet.Fleet.
    power_budget_w`) holds back dispatches that would push the
    concurrently-busy chips' combined caps over budget.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Protocol, Sequence, Tuple, Type

from repro.cluster.costmodel import JobEstimate
from repro.cluster.fleet import ChipSpec
from repro.cluster.jobs import ClusterJob


class SchedulingContext(Protocol):
    """What a policy may observe about the cluster mid-run."""

    def estimate(self, job: ClusterJob, chip: ChipSpec) -> JobEstimate:
        """Predicted service time / energy of *job* on *chip*."""
        ...

    def transfer_s(self, job: ClusterJob, chip: ChipSpec) -> float:
        """Staging time for *job*'s input on *chip* (0 when resident)."""
        ...

    def is_resident(self, job: ClusterJob, chip: ChipSpec) -> bool:
        """Whether *job*'s dataset is already resident on *chip*."""
        ...


def _fifo_key(job: ClusterJob) -> Tuple[float, int]:
    return (job.arrival_s, job.job_id)


class ClusterScheduler:
    """Base class: FIFO job, lowest-id chip.  Subclasses override
    :meth:`pick_job` and/or :meth:`pick_chip`."""

    #: Registry name (set by :func:`register_scheduler`).
    name = "base"

    def pick_job(
        self,
        now: float,
        queue: Sequence[ClusterJob],
        free_chips: Sequence[ChipSpec],
        ctx: SchedulingContext,
    ) -> ClusterJob:
        return min(queue, key=_fifo_key)

    def pick_chip(
        self,
        now: float,
        job: ClusterJob,
        free_chips: Sequence[ChipSpec],
        ctx: SchedulingContext,
    ) -> ChipSpec:
        return min(free_chips, key=lambda c: c.chip_id)

    def select(
        self,
        now: float,
        queue: Sequence[ClusterJob],
        free_chips: Sequence[ChipSpec],
        ctx: SchedulingContext,
    ) -> Optional[Tuple[ClusterJob, ChipSpec]]:
        """The next dispatch, or ``None`` to leave the queue waiting."""
        if not queue or not free_chips:
            return None
        job = self.pick_job(now, queue, free_chips, ctx)
        chip = self.pick_chip(now, job, free_chips, ctx)
        return job, chip


class FifoScheduler(ClusterScheduler):
    """Arrival order, lowest-numbered free chip."""


class PriorityScheduler(ClusterScheduler):
    """Strict priority tiers; FIFO within a tier."""

    def pick_job(self, now, queue, free_chips, ctx):
        return min(queue, key=lambda j: (-j.priority,) + _fifo_key(j))


class DeadlineScheduler(ClusterScheduler):
    """Earliest-deadline-first, landing on the fastest-completing chip."""

    def pick_job(self, now, queue, free_chips, ctx):
        return min(
            queue,
            key=lambda j: (
                j.deadline_s if j.deadline_s is not None else math.inf,
            ) + _fifo_key(j),
        )

    def pick_chip(self, now, job, free_chips, ctx):
        return min(
            free_chips,
            key=lambda c: (
                ctx.transfer_s(job, c) + ctx.estimate(job, c).service_s,
                c.chip_id,
            ),
        )


class LeastEdpScheduler(ClusterScheduler):
    """FIFO job order; chip minimizing the job's energy-delay product
    (staging time included in the delay term)."""

    def pick_chip(self, now, job, free_chips, ctx):
        def edp_of(chip: ChipSpec) -> Tuple[float, int]:
            estimate = ctx.estimate(job, chip)
            delay = ctx.transfer_s(job, chip) + estimate.service_s
            return (estimate.energy_j * delay, chip.chip_id)

        return min(free_chips, key=edp_of)


class LocalityScheduler(ClusterScheduler):
    """Transfer-cost-aware: resident (job, chip) pairs dispatch first."""

    def select(self, now, queue, free_chips, ctx):
        if not queue or not free_chips:
            return None
        # First resident pair, scanning jobs in FIFO order.
        for job in sorted(queue, key=_fifo_key):
            resident = [c for c in free_chips if ctx.is_resident(job, c)]
            if resident:
                return job, min(resident, key=lambda c: c.chip_id)
        # Nothing resident anywhere: head job, cheapest transfer.
        job = min(queue, key=_fifo_key)
        chip = min(
            free_chips,
            key=lambda c: (ctx.transfer_s(job, c), c.chip_id),
        )
        return job, chip


class PowerAwareScheduler(ClusterScheduler):
    """Cap-aware placement under an optional fleet power budget.

    Deadline jobs (EDF order) land on the free chip with the *highest*
    effective cap -- uncapped chips first, so tight deadlines never eat
    governor throttling -- while best-effort jobs soak up the capped
    chips (lowest effective cap first).  When the fleet carries a
    ``power_budget_w``, a dispatch that would push the busy chips'
    combined effective caps over budget is held back until completions
    return headroom; with the whole fleet idle the cheapest chip runs
    anyway (a job the budget can never admit must not starve).
    """

    def _chip_power_w(self, chip: ChipSpec) -> float:
        """The chip's effective worst-case draw: its chip-level cap when
        set, else the estimated uncapped peak for its die and node."""
        from repro.power.frontier import chip_peak_power_w

        cap = chip.cap()
        if cap is not None and cap.chip_cap_w is not None:
            return float(cap.chip_cap_w)
        return chip_peak_power_w(chip.num_workers, tech=chip.tech_spec())

    def select(self, now, queue, free_chips, ctx):
        if not queue or not free_chips:
            return None
        candidates = list(free_chips)
        fleet = getattr(ctx, "fleet", None)
        budget = getattr(fleet, "power_budget_w", None)
        all_idle = True
        if budget is not None and fleet is not None:
            free_ids = {chip.chip_id for chip in free_chips}
            drawn = sum(
                self._chip_power_w(chip)
                for chip in fleet
                if chip.chip_id not in free_ids
            )
            all_idle = drawn == 0.0
            headroom = budget - drawn
            affordable = [
                chip for chip in candidates
                if self._chip_power_w(chip) <= headroom
            ]
            if affordable:
                candidates = affordable
            elif not all_idle:
                return None  # wait for completions to return headroom
            else:
                candidates = [
                    min(candidates, key=lambda c: (self._chip_power_w(c), c.chip_id))
                ]
        job = min(
            queue,
            key=lambda j: (
                j.deadline_s if j.deadline_s is not None else math.inf,
            ) + _fifo_key(j),
        )
        def effective_cap(chip: ChipSpec) -> float:
            cap = chip.cap()
            if cap is None or cap.chip_cap_w is None:
                return math.inf
            return float(cap.chip_cap_w)

        if job.deadline_s is not None:
            chip = min(
                candidates, key=lambda c: (-effective_cap(c), c.chip_id)
            )
        else:
            chip = min(
                candidates, key=lambda c: (effective_cap(c), c.chip_id)
            )
        return job, chip


#: The pluggable policy registry (ray-scheduler-prototype style).
SCHEDULERS: Dict[str, Type[ClusterScheduler]] = {}


def register_scheduler(
    name: str, cls: Type[ClusterScheduler]
) -> Type[ClusterScheduler]:
    """Register a policy class under *name* (overwrites are rejected)."""
    if name in SCHEDULERS:
        raise ValueError(f"scheduler {name!r} already registered")
    cls.name = name
    SCHEDULERS[name] = cls
    return cls


register_scheduler("fifo", FifoScheduler)
register_scheduler("priority", PriorityScheduler)
register_scheduler("edf", DeadlineScheduler)
register_scheduler("least_edp", LeastEdpScheduler)
register_scheduler("locality", LocalityScheduler)
register_scheduler("power_aware", PowerAwareScheduler)


def create_scheduler(name: str) -> ClusterScheduler:
    """Instantiate a registered policy by name."""
    if name not in SCHEDULERS:
        raise KeyError(
            f"unknown scheduler {name!r}; known: {sorted(SCHEDULERS)}"
        )
    return SCHEDULERS[name]()


def scheduler_names() -> List[str]:
    """Registered policy names, in registration order."""
    return list(SCHEDULERS)
