"""The typed event core of the cluster service.

Every state change in a cluster run is one :class:`Event` on one
deterministic heap:

``COMPLETE``
    A chip finishes its job (or its staging transfer + job).
``RETRY``
    A closed-loop source re-submits a previously backpressured job
    after its backoff expires.
``ARRIVAL``
    A job arrives from the source's trace.
``PREEMPT``
    The policy checkpoints a running job and returns its chip.
``DISPATCH``
    The scheduling round places one (job, chip) pair.

The heap order *is* the service's determinism contract.  Events sort by
``(time_s, rank, tie, seq)``:

* ``rank`` encodes the legacy tie rules -- at one timestamp completions
  are applied before retries, retries before fresh arrivals, and the
  scheduling round's preemptions/dispatches come last (the round only
  runs once every simultaneous state change has been applied, exactly
  like the pre-engine loop's completions-before-arrivals ordering).
* ``tie`` is the domain tie-break: ``chip_id`` for completions (the
  legacy busy-heap order), ``job_id`` for arrivals and retries.
* ``seq`` is a monotonic issue counter, so the order is total without
  ever comparing payloads.

:class:`EventEngine` owns the heap and the stepping rule; the cluster
engine (:mod:`repro.cluster.engine`) supplies the two callbacks --
``apply`` for a single event and ``round_fn`` for the scheduling round
run after each drained timestamp.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

#: Event kinds, in application order at one timestamp.
COMPLETE = "complete"
RETRY = "retry"
ARRIVAL = "arrival"
PREEMPT = "preempt"
DISPATCH = "dispatch"

#: Application order at equal timestamps (the legacy tie rules).
EVENT_RANK: Dict[str, int] = {
    COMPLETE: 0,
    RETRY: 1,
    ARRIVAL: 2,
    PREEMPT: 3,
    DISPATCH: 4,
}


@dataclass(frozen=True)
class Event:
    """One typed, totally ordered cluster event."""

    time_s: float
    kind: str
    #: Domain tie-break at equal (time, kind): chip_id for completions,
    #: job_id for arrivals/retries, issue order for round events.
    tie: int
    #: Monotonic issue counter (total order without payload compares).
    seq: int
    payload: Any = field(default=None, compare=False)

    @property
    def sort_key(self):
        return (self.time_s, EVENT_RANK[self.kind], self.tie, self.seq)


class EventEngine:
    """One deterministic heap plus the drain-then-round stepping rule.

    :meth:`run` pops every event sharing the earliest timestamp (in
    rank/tie order), applies each through *apply*, then invokes
    *round_fn* -- the scheduling round -- which may push ``PREEMPT`` /
    ``DISPATCH`` events back at the same timestamp.  Those are drained
    and the round re-runs until it stops producing events; only then
    does time advance.  This reproduces the legacy loop exactly: at any
    instant, completions are visible to simultaneous arrivals, and the
    dispatch round sees every simultaneous state change.
    """

    def __init__(self) -> None:
        self._heap: List[tuple] = []
        self._seq = 0
        #: Events applied, by kind (cheap audit counters).
        self.counts: Dict[str, int] = {kind: 0 for kind in EVENT_RANK}

    def __len__(self) -> int:
        return len(self._heap)

    def schedule(
        self, time_s: float, kind: str, tie: int = 0, payload: Any = None
    ) -> Event:
        """Push one event; returns it (the seq identifies it uniquely)."""
        if kind not in EVENT_RANK:
            raise ValueError(
                f"unknown event kind {kind!r}; known: {sorted(EVENT_RANK)}"
            )
        self._seq += 1
        event = Event(
            time_s=float(time_s), kind=kind, tie=int(tie),
            seq=self._seq, payload=payload,
        )
        heapq.heappush(self._heap, (event.sort_key, event))
        return event

    def peek_time(self) -> Optional[float]:
        """Earliest scheduled instant, or ``None`` when drained."""
        return self._heap[0][1].time_s if self._heap else None

    def _pop(self) -> Event:
        return heapq.heappop(self._heap)[1]

    def run(
        self,
        apply: Callable[[Event], None],
        round_fn: Callable[[float], bool],
    ) -> None:
        """Step the heap to exhaustion.

        *apply* handles one event (and may schedule future events);
        *round_fn(now)* runs one scheduling round and returns ``True``
        when it scheduled same-instant work that must be drained before
        the round is consulted again.
        """
        while self._heap:
            now = self._heap[0][1].time_s
            while self._heap and self._heap[0][1].time_s == now:
                event = self._pop()
                self.counts[event.kind] += 1
                apply(event)
            # Every simultaneous event is applied; run scheduling rounds
            # until they stop producing same-instant events.
            while round_fn(now):
                while self._heap and self._heap[0][1].time_s == now:
                    event = self._pop()
                    self.counts[event.kind] += 1
                    apply(event)
