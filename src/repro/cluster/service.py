"""The cluster service: the stable facade over the event engine.

:class:`ClusterService` is the API surface a cluster run is driven
through -- construct with a fleet / policy / cache, :meth:`run` a trace
(or a closed-loop :class:`~repro.cluster.arrivals.Source`), get a
:class:`~repro.cluster.record.ClusterRunResult` back.  The actual
discrete-event mechanics live one layer down in
:class:`~repro.cluster.engine.ClusterEngine`, which steps the typed
event heap of :mod:`repro.cluster.events`; the service wires a fresh
engine per run, carries the persistent pieces across runs (the
:class:`~repro.cluster.costmodel.CostModel` memo and the policy), and
folds the engine's records into the SLO report and run record.

Determinism contract (unchanged by the engine refactor): events advance
to exact float minima, completions at a timestamp are applied before
retries, retries before arrivals, and the scheduling round runs only
after every simultaneous event -- so a chip freed "at" an instant is
visible to the job arriving at that instant.  Same trace + same fleet +
same policy + same source => byte-identical records and metrics; for
open-loop sources and non-preemptive policies the records are
bit-identical to the pre-engine loop (pinned by the golden record
tests).
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Union

from repro.cluster.arrivals import ArrivalTrace, Source, make_source
from repro.cluster.costmodel import CostModel, JobEstimate
from repro.cluster.engine import ClusterEngine
from repro.cluster.fleet import ChipSpec, Fleet
from repro.cluster.jobs import ClusterJob
from repro.cluster.metrics import slo_report
from repro.cluster.policies import ClusterScheduler, create_scheduler
from repro.cluster.record import ClusterRunResult
from repro.orchestrator.cache import StudyCache


class ClusterService:
    """One policy serving one fleet; :meth:`run` serves one trace."""

    def __init__(
        self,
        fleet: Fleet,
        policy: Union[str, ClusterScheduler] = "fifo",
        cache: Optional[Union[StudyCache, str]] = None,
        max_queue_depth: int = 8,
        cost_model: Optional[CostModel] = None,
        prefetch_jobs: Optional[int] = None,
    ):
        if isinstance(policy, str):
            policy = create_scheduler(policy)
        if max_queue_depth < 1:
            raise ValueError(
                f"max_queue_depth must be >= 1, got {max_queue_depth}"
            )
        if prefetch_jobs is not None and prefetch_jobs < 1:
            raise ValueError(
                f"prefetch_jobs must be >= 1, got {prefetch_jobs}"
            )
        self.fleet = fleet
        self.policy = policy
        self.max_queue_depth = int(max_queue_depth)
        self.cost_model = (
            cost_model if cost_model is not None else CostModel(cache)
        )
        #: When set, each run resolves its distinct (study, chip-class)
        #: units through one parallel orchestrator batch up front.
        self.prefetch_jobs = prefetch_jobs
        # Residency is part of the SchedulingContext the policy observes
        # (estimate/transfer_s/is_resident), so it must exist from
        # construction -- policies probe costs before the first run()
        # and between runs.  run() replaces it with the engine's view:
        # residency is per-trace.
        self._resident: Dict[int, Set[str]] = {
            chip.chip_id: set() for chip in self.fleet
        }

    # ------------------------------------------------------------------ #
    # the SchedulingContext the policy observes (between runs; during a
    # run the engine itself is the context)
    # ------------------------------------------------------------------ #

    def estimate(self, job: ClusterJob, chip: ChipSpec) -> JobEstimate:
        return self.cost_model.estimate(job, chip)

    def transfer_s(self, job: ClusterJob, chip: ChipSpec) -> float:
        if self.is_resident(job, chip):
            return 0.0
        return self.fleet.transfer_s(job.input_mb)

    def is_resident(self, job: ClusterJob, chip: ChipSpec) -> bool:
        return job.dataset_key in self._resident.get(chip.chip_id, set())

    # ------------------------------------------------------------------ #

    def run(
        self,
        trace: Union[ArrivalTrace, Source],
        source: Union[str, Source] = "open",
        source_options: Optional[Dict] = None,
    ) -> ClusterRunResult:
        """Serve *trace* to completion and report the outcome.

        *trace* may be a bare :class:`ArrivalTrace` (wrapped in a source
        named by *source*: ``"open"`` sheds backpressured jobs,
        ``"closed"`` retries them with seeded exponential backoff tuned
        by *source_options*) or an already-built :class:`Source`.
        """
        if isinstance(trace, ArrivalTrace):
            if isinstance(source, str):
                src = make_source(trace, source, **(source_options or {}))
            else:
                src = source
        else:
            src = trace
        engine = ClusterEngine(
            self.fleet,
            self.policy,
            self.cost_model,
            self.max_queue_depth,
            prefetch_jobs=self.prefetch_jobs,
        )
        ordered = engine.run(src)
        self._resident = engine.resident
        report = slo_report(self.policy.name, ordered, self.fleet)
        return ClusterRunResult(
            trace=src.trace,
            policy=self.policy.name,
            fleet=self.fleet,
            max_queue_depth=self.max_queue_depth,
            records=ordered,
            report=report,
            study_stats=self.cost_model.stats(),
            source=src.to_dict(),
        )


def run_workload(
    trace: Union[ArrivalTrace, Source],
    fleet: Fleet,
    policy: Union[str, ClusterScheduler] = "fifo",
    cache: Optional[Union[StudyCache, str]] = None,
    max_queue_depth: int = 8,
    source: Union[str, Source] = "open",
    source_options: Optional[Dict] = None,
    prefetch_jobs: Optional[int] = None,
) -> ClusterRunResult:
    """One-shot convenience: build the service and serve *trace*."""
    service = ClusterService(
        fleet,
        policy=policy,
        cache=cache,
        max_queue_depth=max_queue_depth,
        prefetch_jobs=prefetch_jobs,
    )
    return service.run(trace, source=source, source_options=source_options)
