"""The cluster service: a deterministic multi-job discrete-event loop.

:class:`ClusterService` admits a stream of jobs from an
:class:`~repro.cluster.arrivals.ArrivalTrace` onto a
:class:`~repro.cluster.fleet.Fleet` of simulated chips:

1. **Admission control** -- an arriving job is admitted while the bounded
   queue has room; otherwise it is rejected on the spot (backpressure:
   an open-loop source sees load shedding, a closed-loop source would
   retry).  Admission, queueing, dispatch and completion each emit
   telemetry spans/counters on the simulated cluster clock.
2. **Scheduling** -- whenever chips are free and jobs are queued, the
   pluggable policy (:mod:`repro.cluster.policies`) picks the next
   (job, chip) dispatch.
3. **Execution** -- the job's service time and energy are the *simulated*
   makespan/energy of its :class:`~repro.orchestrator.spec.StudySpec` on
   that chip, resolved through the :class:`~repro.cluster.costmodel.CostModel`
   (memo -> StudyCache -> simulate), plus input staging time when the
   dataset is not yet resident on the chip.  A chip carrying a
   :class:`~repro.faults.FaultPlan` serves every job degraded.

The loop is fully deterministic: events advance to exact float minima,
completions at a timestamp are processed before arrivals at the same
timestamp (a freed chip is visible to the job arriving "at" that
instant), and every policy tie-break bottoms out on ids.  Same trace +
same fleet + same policy => byte-identical records and metrics.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Set, Tuple, Union

from repro.cluster.arrivals import ArrivalTrace
from repro.cluster.costmodel import CostModel, JobEstimate
from repro.cluster.fleet import ChipSpec, Fleet
from repro.cluster.jobs import COMPLETED, REJECTED, ClusterJob, JobRecord
from repro.cluster.metrics import slo_report
from repro.cluster.policies import ClusterScheduler, create_scheduler
from repro.cluster.record import ClusterRunResult
from repro.orchestrator.cache import StudyCache
from repro.telemetry import get_tracer


class ClusterService:
    """One policy serving one fleet; :meth:`run` serves one trace."""

    def __init__(
        self,
        fleet: Fleet,
        policy: Union[str, ClusterScheduler] = "fifo",
        cache: Optional[Union[StudyCache, str]] = None,
        max_queue_depth: int = 8,
    ):
        if isinstance(policy, str):
            policy = create_scheduler(policy)
        if max_queue_depth < 1:
            raise ValueError(
                f"max_queue_depth must be >= 1, got {max_queue_depth}"
            )
        self.fleet = fleet
        self.policy = policy
        self.max_queue_depth = int(max_queue_depth)
        self.cost_model = CostModel(cache)
        # Residency is part of the SchedulingContext the policy observes
        # (estimate/transfer_s/is_resident), so it must exist from
        # construction -- policies probe costs before the first run()
        # and between runs.  run() resets it: residency is per-trace.
        self._resident: Dict[int, Set[str]] = {
            chip.chip_id: set() for chip in self.fleet
        }

    # ------------------------------------------------------------------ #
    # the SchedulingContext the policy observes
    # ------------------------------------------------------------------ #

    def estimate(self, job: ClusterJob, chip: ChipSpec) -> JobEstimate:
        return self.cost_model.estimate(job, chip)

    def transfer_s(self, job: ClusterJob, chip: ChipSpec) -> float:
        if self.is_resident(job, chip):
            return 0.0
        return self.fleet.transfer_s(job.input_mb)

    def is_resident(self, job: ClusterJob, chip: ChipSpec) -> bool:
        return job.dataset_key in self._resident.get(chip.chip_id, set())

    # ------------------------------------------------------------------ #

    def run(self, trace: ArrivalTrace) -> ClusterRunResult:
        """Serve *trace* to completion and report the outcome."""
        tracer = get_tracer()
        records: Dict[int, JobRecord] = {}
        queue: List[ClusterJob] = []
        pending: List[ClusterJob] = list(trace.jobs)  # already sorted
        next_arrival = 0  # cursor into pending: no O(n) pop(0) shifts
        #: (completion_s, chip_id, record) -- chip_id breaks float ties.
        busy: List[Tuple[float, int, JobRecord]] = []
        free: Dict[int, ChipSpec] = {
            chip.chip_id: chip for chip in self.fleet
        }
        # Residency is per-trace: rebuild (also picks up fleet changes).
        self._resident = {chip.chip_id: set() for chip in self.fleet}

        def admit(job: ClusterJob, now: float) -> None:
            if len(queue) >= self.max_queue_depth:
                records[job.job_id] = JobRecord(job=job, status=REJECTED)
                if tracer.enabled:
                    tracer.counter_add("cluster.rejected", 1.0)
                    tracer.span(
                        job.label, job.arrival_s, 0.0, cat="cluster",
                        pid="cluster", tid="rejected",
                    )
                return
            record = JobRecord(job=job, status=COMPLETED, admitted_s=now)
            records[job.job_id] = record
            queue.append(job)
            if tracer.enabled:
                tracer.counter_add("cluster.admitted", 1.0)

        def dispatch(job: ClusterJob, chip: ChipSpec, now: float) -> None:
            # Remove the selected job *by identity*, not list.remove():
            # ClusterJob is a frozen dataclass with field equality, so an
            # equality-based remove on a queue holding equal duplicates
            # would strip the first match -- possibly not the object the
            # policy picked -- and corrupt the records/queue pairing.
            for index, queued in enumerate(queue):
                if queued is job:
                    del queue[index]
                    break
            del free[chip.chip_id]
            transfer = self.transfer_s(job, chip)
            estimate = self.cost_model.estimate(job, chip)
            record = records[job.job_id]
            record.chip_id = chip.chip_id
            record.dispatched_s = now
            record.transfer_s = transfer
            record.service_s = estimate.service_s
            record.energy_j = estimate.energy_j
            completion = now + transfer + estimate.service_s
            heapq.heappush(busy, (completion, chip.chip_id, record))
            self._resident[chip.chip_id].add(job.dataset_key)
            if tracer.enabled:
                tracer.counter_add("cluster.dispatched", 1.0)
                tracer.histogram_record(
                    "cluster.queue_wait_s", record.queue_wait_s
                )
                if record.queue_wait_s > 0.0:
                    tracer.span(
                        job.label, record.admitted_s, record.queue_wait_s,
                        cat="cluster", pid="cluster", tid="queue",
                    )
                tracer.span(
                    job.label, now, transfer + estimate.service_s,
                    cat="cluster", pid="cluster",
                    tid=f"chip{chip.chip_id}",
                    app=job.app, transfer_s=transfer,
                    service_s=estimate.service_s,
                )

        def complete(record: JobRecord, when: float) -> None:
            record.completed_s = when
            free[record.chip_id] = self.fleet.chip(record.chip_id)
            if tracer.enabled:
                tracer.counter_add("cluster.completed", 1.0)
                tracer.histogram_record("cluster.latency_s", record.latency_s)
                if record.deadline_met is False:
                    tracer.counter_add("cluster.deadline_misses", 1.0)

        now = 0.0
        while True:
            # Dispatch everything the policy will place at `now`.
            while queue and free:
                free_chips = [free[cid] for cid in sorted(free)]
                pick = self.policy.select(now, list(queue), free_chips, self)
                if pick is None:
                    break
                job, chip = pick
                queued = any(queued is job for queued in queue)
                if not queued or chip.chip_id not in free:
                    raise RuntimeError(
                        f"policy {self.policy.name!r} selected an invalid "
                        f"pair: {job.label} -> {chip.label}"
                    )
                dispatch(job, chip, now)

            times = []
            if busy:
                times.append(busy[0][0])
            if next_arrival < len(pending):
                times.append(pending[next_arrival].arrival_s)
            if not times:
                break
            now = min(times)
            # Completions first: a chip freed at `now` is visible to the
            # arrival (and dispatch round) at the same instant.
            while busy and busy[0][0] <= now:
                completion, _, record = heapq.heappop(busy)
                complete(record, completion)
            while (
                next_arrival < len(pending)
                and pending[next_arrival].arrival_s <= now
            ):
                admit(pending[next_arrival], now)
                next_arrival += 1

        ordered = [records[job.job_id] for job in trace.jobs]
        report = slo_report(self.policy.name, ordered, self.fleet)
        return ClusterRunResult(
            trace=trace,
            policy=self.policy.name,
            fleet=self.fleet,
            max_queue_depth=self.max_queue_depth,
            records=ordered,
            report=report,
            study_stats=self.cost_model.stats(),
        )


def run_workload(
    trace: ArrivalTrace,
    fleet: Fleet,
    policy: Union[str, ClusterScheduler] = "fifo",
    cache: Optional[Union[StudyCache, str]] = None,
    max_queue_depth: int = 8,
) -> ClusterRunResult:
    """One-shot convenience: build the service and serve *trace*."""
    service = ClusterService(
        fleet, policy=policy, cache=cache, max_queue_depth=max_queue_depth
    )
    return service.run(trace)
