"""The simulated chip fleet a cluster run schedules onto.

A :class:`ChipSpec` describes one VFI chip in the fleet: die size,
which simulated configuration it represents (``vfi2_winoc`` by default
-- the paper's best system), and optionally a
:class:`repro.faults.FaultPlan` that degrades every job the chip runs
(the fault axis composing with the cluster layer).  A :class:`Fleet`
is an ordered collection of chips plus the shared ingest interconnect
that charges transfer time for non-resident datasets.

Specs are frozen and canonical so a fleet round-trips through the run
record's canonical JSON.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple, Union

from repro.core.experiment import NVFI_MESH, VFI1_MESH, VFI2_MESH, VFI2_WINOC
from repro.core.geometry import DieGeometry
from repro.faults import FaultPlan
from repro.orchestrator.spec import WINOC_METHODOLOGIES, _canonical_plan_json
from repro.power.spec import PowerCapSpec, canonical_cap_json
from repro.tech.spec import TechSpec, canonical_tech_json
from repro.utils.jsonutil import to_builtin

#: Configurations a chip can embody (one simulated system per chip).
CHIP_CONFIGS = (NVFI_MESH, VFI1_MESH, VFI2_MESH, VFI2_WINOC)


@dataclass(frozen=True)
class ChipSpec:
    """One simulated chip in the fleet."""

    chip_id: int
    num_workers: int = 16
    config: str = VFI2_WINOC
    winoc_methodology: str = "max_wireless"
    #: Canonical fault-plan JSON degrading this chip, or ``None``.
    #: Accepts a FaultPlan / JSON text at construction (like StudySpec).
    fault_plan: Optional[str] = None
    #: Canonical tech JSON (node x core mix), or ``None`` for the paper's
    #: 65 nm homogeneous default.  Accepts a TechSpec / JSON text.
    tech: Optional[str] = None
    #: Canonical power-cap JSON enforced on every job this chip runs, or
    #: ``None`` for an uncapped chip.  Accepts a PowerCapSpec / JSON
    #: text / bare watts at construction (like StudySpec).
    power_cap: Optional[str] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "chip_id", int(self.chip_id))
        object.__setattr__(self, "num_workers", int(self.num_workers))
        object.__setattr__(
            self, "fault_plan", _canonical_plan_json(self.fault_plan)
        )
        object.__setattr__(self, "tech", canonical_tech_json(self.tech))
        object.__setattr__(
            self, "power_cap", canonical_cap_json(self.power_cap)
        )
        if self.chip_id < 0:
            raise ValueError(f"chip_id must be >= 0, got {self.chip_id}")
        if self.config not in CHIP_CONFIGS:
            raise ValueError(
                f"config must be one of {CHIP_CONFIGS}, got {self.config!r}"
            )
        if self.winoc_methodology not in WINOC_METHODOLOGIES:
            raise ValueError(
                f"winoc_methodology must be one of {WINOC_METHODOLOGIES}, "
                f"got {self.winoc_methodology!r}"
            )
        try:
            DieGeometry.for_cores(self.num_workers)
        except ValueError as exc:
            raise ValueError(
                f"chip {self.chip_id}: num_workers {self.num_workers!r} "
                f"does not resolve to a die geometry: {exc}"
            ) from None

    # ------------------------------------------------------------------ #

    @property
    def needs_vfi1(self) -> bool:
        """Whether this chip's study must simulate the VFI 1 system."""
        return self.config == VFI1_MESH

    @property
    def class_key(self) -> Tuple:
        """Chips of the same class resolve a job to the same StudySpec."""
        return (
            self.num_workers, self.config, self.winoc_methodology,
            self.fault_plan, self.tech, self.power_cap,
        )

    def plan(self) -> Optional[FaultPlan]:
        if self.fault_plan is None:
            return None
        return FaultPlan.from_json(self.fault_plan)

    def tech_spec(self) -> Optional[TechSpec]:
        """The decoded tech spec, or ``None`` for the paper default."""
        if self.tech is None:
            return None
        return TechSpec.from_json(self.tech)

    def cap(self) -> Optional[PowerCapSpec]:
        """The decoded power cap, or ``None`` for an uncapped chip."""
        if self.power_cap is None:
            return None
        return PowerCapSpec.from_json(self.power_cap)

    @property
    def node_nm(self) -> int:
        """Feature size of the chip's technology node in nanometres
        (65 for the paper default) -- the tech-aware routing key."""
        spec = self.tech_spec()
        if spec is None:
            return 65
        return int(spec.node[:-2]) if spec.node.endswith("nm") else int(spec.node)

    @property
    def core_class(self) -> str:
        """The chip's core-mix name (``"ooo"`` homogeneous default,
        ``"big_little"``/``"io"`` presets, ``"mixed"`` for explicit
        per-island tuples)."""
        spec = self.tech_spec()
        if spec is None:
            return "ooo"
        return spec.cores if isinstance(spec.cores, str) else "mixed"

    @property
    def is_efficiency_class(self) -> bool:
        """Whether the chip trades peak speed for efficiency (any core
        mix other than the homogeneous out-of-order default)."""
        return self.core_class != "ooo"

    @property
    def label(self) -> str:
        parts = [f"chip{self.chip_id}", f"{self.num_workers}c", self.config]
        if self.fault_plan is not None:
            plan = self.plan()
            parts.append(f"faults={plan.name or 'plan'}({len(plan)})")
        if self.tech is not None:
            parts.append(f"tech={self.tech_spec().label}")
        if self.power_cap is not None:
            parts.append(f"cap={self.cap().label}")
        return " ".join(parts)

    def to_dict(self) -> Dict:
        return {
            "chip_id": self.chip_id,
            "num_workers": self.num_workers,
            "config": self.config,
            "winoc_methodology": self.winoc_methodology,
            "fault_plan": self.fault_plan,
            "tech": self.tech,
            "power_cap": self.power_cap,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "ChipSpec":
        return cls(**to_builtin(dict(data)))


@dataclass(frozen=True)
class Fleet:
    """An ordered set of chips behind one ingest interconnect."""

    chips: Tuple[ChipSpec, ...]
    #: Shared ingest bandwidth charged when staging non-resident inputs.
    interconnect_gbps: float = 1.0
    #: Fleet-level power budget (watts) the ``power_aware`` scheduler
    #: keeps the concurrently-busy chips under, or ``None`` (unbounded).
    power_budget_w: Optional[float] = None

    def __post_init__(self) -> None:
        chips = tuple(
            sorted(self.chips, key=lambda c: c.chip_id)
        )
        object.__setattr__(self, "chips", chips)
        object.__setattr__(
            self, "interconnect_gbps", float(self.interconnect_gbps)
        )
        if self.power_budget_w is not None:
            object.__setattr__(
                self, "power_budget_w", float(self.power_budget_w)
            )
        if not chips:
            raise ValueError("fleet must contain at least one chip")
        ids = [chip.chip_id for chip in chips]
        if len(set(ids)) != len(ids):
            raise ValueError("chip ids must be unique")
        if self.interconnect_gbps <= 0.0:
            raise ValueError(
                f"interconnect_gbps must be > 0, got {self.interconnect_gbps}"
            )
        if self.power_budget_w is not None and self.power_budget_w <= 0.0:
            raise ValueError(
                f"power_budget_w must be > 0, got {self.power_budget_w}"
            )

    def __len__(self) -> int:
        return len(self.chips)

    def __iter__(self):
        return iter(self.chips)

    def chip(self, chip_id: int) -> ChipSpec:
        for chip in self.chips:
            if chip.chip_id == chip_id:
                return chip
        raise KeyError(f"no chip {chip_id} in fleet")

    def transfer_s(self, input_mb: float) -> float:
        """Staging time for *input_mb* over the ingest interconnect."""
        return float(input_mb) * 8e6 / (self.interconnect_gbps * 1e9)

    def to_dict(self) -> Dict:
        out = {
            "chips": [chip.to_dict() for chip in self.chips],
            "interconnect_gbps": self.interconnect_gbps,
        }
        if self.power_budget_w is not None:
            out["power_budget_w"] = self.power_budget_w
        return out

    @classmethod
    def from_dict(cls, data: Dict) -> "Fleet":
        data = to_builtin(dict(data))
        return cls(
            chips=tuple(ChipSpec.from_dict(c) for c in data["chips"]),
            interconnect_gbps=data.get("interconnect_gbps", 1.0),
            power_budget_w=data.get("power_budget_w"),
        )


def fleet_for(
    num_chips: int,
    num_workers: int = 16,
    config: str = VFI2_WINOC,
    interconnect_gbps: float = 1.0,
    fault_plans: Union[None, Sequence[Union[None, str, FaultPlan]]] = None,
    tech: Union[None, str, TechSpec] = None,
    power_caps: Union[
        None, Sequence[Union[None, str, float, PowerCapSpec]]
    ] = None,
    power_budget_w: Optional[float] = None,
) -> Fleet:
    """Build a homogeneous fleet (optionally with per-chip fault plans).

    *fault_plans*, when given, must have one entry per chip (``None``
    entries leave that chip clean) -- this is how a cluster scenario
    degrades part of the fleet while the rest serves at full speed.
    *tech* applies one technology configuration to every chip; build the
    fleet by hand (or with :func:`hetero_fleet`) for per-chip nodes.
    *power_caps* mirrors *fault_plans*: one entry per chip (``None``
    entries leave that chip uncapped; bare numbers are chip-level caps
    in watts), which is how a scenario runs a power-tiered fleet.
    *power_budget_w* is the fleet-level budget the ``power_aware``
    scheduler enforces over concurrently-busy chips.
    """
    if num_chips < 1:
        raise ValueError(f"num_chips must be >= 1, got {num_chips}")
    if fault_plans is not None and len(fault_plans) != num_chips:
        raise ValueError(
            f"fault_plans must have {num_chips} entries, got {len(fault_plans)}"
        )
    if power_caps is not None and len(power_caps) != num_chips:
        raise ValueError(
            f"power_caps must have {num_chips} entries, got {len(power_caps)}"
        )
    chips = []
    for chip_id in range(num_chips):
        plan = fault_plans[chip_id] if fault_plans is not None else None
        cap = power_caps[chip_id] if power_caps is not None else None
        chips.append(
            ChipSpec(
                chip_id=chip_id,
                num_workers=num_workers,
                config=config,
                fault_plan=plan,
                tech=tech,
                power_cap=cap,
            )
        )
    return Fleet(
        chips=tuple(chips),
        interconnect_gbps=interconnect_gbps,
        power_budget_w=power_budget_w,
    )


def hetero_fleet(
    num_chips: int = 4,
    config: str = VFI2_WINOC,
    interconnect_gbps: float = 1.0,
) -> Fleet:
    """Heterogeneous reference fleet: mixed die sizes *and* tech nodes.

    Chips cycle through four classes -- the paper's 16-core 65 nm chip,
    a 64-core 45 nm shrink, a 16-core 32 nm big.LITTLE part and a
    64-core 22 nm in-order throughput part -- so a single fleet
    exercises every axis the scheduler can trade against: die size, node
    and core mix.  Chips of the same class still deduplicate to one
    study per job via :attr:`ChipSpec.class_key`.
    """
    classes = (
        (16, None),
        (64, TechSpec(node="45nm")),
        (16, TechSpec(node="32nm", cores="big_little")),
        (64, TechSpec(node="22nm", cores="io")),
    )
    if num_chips < 1:
        raise ValueError(f"num_chips must be >= 1, got {num_chips}")
    chips = []
    for chip_id in range(num_chips):
        num_workers, tech = classes[chip_id % len(classes)]
        chips.append(
            ChipSpec(
                chip_id=chip_id,
                num_workers=num_workers,
                config=config,
                tech=tech,
            )
        )
    return Fleet(chips=tuple(chips), interconnect_gbps=interconnect_gbps)
