"""The cluster engine: one run of a source against a fleet.

:class:`ClusterEngine` executes one workload by stepping the typed
event heap of :mod:`repro.cluster.events`:

* ``ARRIVAL`` / ``RETRY`` events feed admission control.  A full queue
  consults the run's :class:`~repro.cluster.arrivals.Source`: open-loop
  sources shed the job terminally (the legacy discipline), closed-loop
  sources schedule a ``RETRY`` after seeded exponential backoff.
* After every drained timestamp the **scheduling round** runs: the
  policy's ``select`` loop emits ``DISPATCH`` events against
  incrementally maintained views (the waiting queue and the sorted
  free-chip list -- no per-call copies), and when jobs wait with no
  chip free, ``select_preemption`` may emit a ``PREEMPT``.
* ``DISPATCH`` starts an execution: the cost model prices the job on
  the chip (optionally re-timed at a policy-chosen DVFS
  :class:`~repro.cluster.costmodel.SpeedStep`), and a ``COMPLETE`` is
  scheduled.  Dataset residency is granted when the staging transfer
  *finishes* -- at completion or at a post-transfer preemption -- never
  at dispatch, so an interrupted transfer cannot gift free residency.
* ``PREEMPT`` checkpoints an execution: service progress is preserved
  as a work fraction (energy already burned stays charged, unfinished
  work is un-charged -- no joule is ever counted twice), an unfinished
  transfer is discarded into ``wasted_transfer_s``, and the job is
  requeued.

The engine is also the :class:`~repro.cluster.policies.SchedulingContext`
the policy observes.  With an open-loop source and a non-preemptive,
non-scaling policy, every arithmetic operation and tie-break reproduces
the pre-engine ``ClusterService.run`` loop bit for bit (pinned by the
golden record tests).
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.cluster.arrivals import Source
from repro.cluster.costmodel import CostModel, JobEstimate, scale_estimate
from repro.cluster.events import (
    ARRIVAL,
    COMPLETE,
    DISPATCH,
    PREEMPT,
    RETRY,
    Event,
    EventEngine,
)
from repro.cluster.fleet import ChipSpec, Fleet
from repro.cluster.jobs import (
    COMPLETED,
    PREEMPTED,
    REJECTED,
    RETRYING,
    ClusterJob,
    JobRecord,
)
from repro.cluster.policies import ClusterScheduler, RunningJob
from repro.telemetry import get_tracer


@dataclass
class _Execution:
    """In-flight bookkeeping for one dispatched segment."""

    job: ClusterJob
    record: JobRecord
    chip: ChipSpec
    dispatched_s: float
    transfer_s: float
    transfer_end_s: float
    #: Planned service time / energy of *this segment* (the remaining
    #: work fraction at the dispatch speed).
    service_s: float
    energy_j: float
    #: Work fraction already completed when this segment started.
    work_start: float
    completion_s: float
    token: int
    speed_label: Optional[str] = None
    cancelled: bool = False


class ClusterEngine:
    """One run: a source served onto a fleet by a policy.

    The engine is single-use -- construct, :meth:`run`, read the
    records.  It doubles as the policy's ``SchedulingContext``.
    """

    def __init__(
        self,
        fleet: Fleet,
        policy: ClusterScheduler,
        cost_model: CostModel,
        max_queue_depth: int,
        prefetch_jobs: Optional[int] = None,
    ):
        self.fleet = fleet
        self.policy = policy
        self.cost_model = cost_model
        self.max_queue_depth = int(max_queue_depth)
        self.prefetch_jobs = prefetch_jobs
        self.events = EventEngine()
        self.records: Dict[int, JobRecord] = {}
        #: Jobs waiting for a chip, in admission order.  Policies read
        #: this view directly -- never copied -- and must not mutate it.
        self.queue: List[ClusterJob] = []
        #: Free chips sorted by chip_id, maintained incrementally (the
        #: legacy loop rebuilt this list from a dict on every policy
        #: call -- O(J x C) over a run).
        self.free_chips: List[ChipSpec] = list(fleet.chips)
        self._free_ids: Set[int] = {chip.chip_id for chip in fleet}
        self.busy: Dict[int, _Execution] = {}
        self.resident: Dict[int, Set[str]] = {
            chip.chip_id: set() for chip in fleet
        }
        #: job_id -> completed work fraction of checkpointed jobs.
        self.progress: Dict[int, float] = {}
        self._source: Optional[Source] = None
        self._token = 0
        self._tracer = get_tracer()

    # ------------------------------------------------------------------ #
    # the SchedulingContext the policy observes
    # ------------------------------------------------------------------ #

    def estimate(self, job: ClusterJob, chip: ChipSpec) -> JobEstimate:
        return self.cost_model.estimate(job, chip)

    def transfer_s(self, job: ClusterJob, chip: ChipSpec) -> float:
        if self.is_resident(job, chip):
            return 0.0
        return self.fleet.transfer_s(job.input_mb)

    def is_resident(self, job: ClusterJob, chip: ChipSpec) -> bool:
        return job.dataset_key in self.resident.get(chip.chip_id, set())

    # ------------------------------------------------------------------ #

    def run(self, source: Source) -> List[JobRecord]:
        """Serve *source* to completion; records in trace order."""
        self._source = source
        trace = source.trace
        if self.prefetch_jobs:
            self._prefetch(trace)
        for job in trace.jobs:
            self.events.schedule(job.arrival_s, ARRIVAL, tie=job.job_id, payload=job)
        self.events.run(self._apply, self._round)
        return [self.records[job.job_id] for job in trace.jobs]

    def _prefetch(self, trace) -> None:
        """Resolve the run's distinct (study, chip-class) units in one
        parallel batch before the event loop starts."""
        job_classes = {}
        for job in trace.jobs:
            job_classes.setdefault((job.app, job.scale, job.seed), job)
        chip_classes = {}
        for chip in self.fleet:
            chip_classes.setdefault(chip.class_key, chip)
        specs = []
        for _, job in sorted(job_classes.items()):
            for _, chip in sorted(
                chip_classes.items(), key=lambda kv: kv[1].chip_id
            ):
                specs.append(job.spec_for(chip))
        stats = self.cost_model.prefetch(specs, jobs=self.prefetch_jobs)
        if self._tracer.enabled:
            self._tracer.counter_add(
                "cluster.prefetched_specs", float(stats["batch_size"])
            )

    # ------------------------------------------------------------------ #
    # event application
    # ------------------------------------------------------------------ #

    def _apply(self, event: Event) -> None:
        kind = event.kind
        if kind == ARRIVAL:
            self._admit(event.payload, event.time_s, attempts=1)
        elif kind == RETRY:
            job = event.payload
            record = self.records[job.job_id]
            self._admit(job, event.time_s, attempts=record.attempts + 1)
        elif kind == COMPLETE:
            execution = event.payload
            if not execution.cancelled:
                self._complete(execution, event.time_s)
        elif kind == PREEMPT:
            self._preempt(event.payload, event.time_s)
        elif kind == DISPATCH:
            job, chip = event.payload
            self._start(job, chip, event.time_s)

    def _admit(self, job: ClusterJob, now: float, attempts: int) -> None:
        record = self.records.get(job.job_id)
        if record is None:
            record = JobRecord(job=job, status=COMPLETED)
            self.records[job.job_id] = record
        record.attempts = attempts
        if len(self.queue) < self.max_queue_depth:
            record.status = COMPLETED
            record.admitted_s = now
            self.queue.append(job)
            if self._tracer.enabled:
                self._tracer.counter_add("cluster.admitted", 1.0)
            return
        retry_at = self._source.retry_at(job, now, attempts)
        if retry_at is None:
            record.status = REJECTED
            if self._tracer.enabled:
                self._tracer.counter_add("cluster.rejected", 1.0)
                self._tracer.histogram_record(
                    "cluster.attempts", float(attempts)
                )
                self._tracer.span(
                    job.label, job.arrival_s, 0.0, cat="cluster",
                    pid="cluster", tid="rejected",
                )
            return
        if retry_at <= now:
            raise RuntimeError(
                f"source scheduled a retry at {retry_at} <= now {now} "
                f"for {job.label}"
            )
        record.status = RETRYING
        self.events.schedule(retry_at, RETRY, tie=job.job_id, payload=job)
        if self._tracer.enabled:
            self._tracer.counter_add("cluster.retries", 1.0)
            self._tracer.histogram_record(
                "cluster.backoff_s", retry_at - now
            )

    def _start(self, job: ClusterJob, chip: ChipSpec, now: float) -> None:
        transfer = self.transfer_s(job, chip)
        estimate = self.cost_model.estimate(job, chip)
        step = self.policy.speed_for(now, job, chip, self.queue, self)
        scaled = scale_estimate(estimate, step)
        work_start = self.progress.get(job.job_id, 0.0)
        remaining = 1.0 - work_start
        segment_service = scaled.service_s * remaining
        segment_energy = scaled.energy_j * remaining
        record = self.records[job.job_id]
        record.status = COMPLETED
        record.chip_id = chip.chip_id
        record.dispatched_s = now
        record.transfer_s += transfer
        record.service_s += segment_service
        record.energy_j += segment_energy
        if step is not None:
            record.extra["dvfs"] = step.label
        completion = now + transfer + segment_service
        self._token += 1
        execution = _Execution(
            job=job,
            record=record,
            chip=chip,
            dispatched_s=now,
            transfer_s=transfer,
            transfer_end_s=now + transfer,
            service_s=segment_service,
            energy_j=segment_energy,
            work_start=work_start,
            completion_s=completion,
            token=self._token,
            speed_label=step.label if step is not None else None,
        )
        self.busy[chip.chip_id] = execution
        self.events.schedule(
            completion, COMPLETE, tie=chip.chip_id, payload=execution
        )
        if self._tracer.enabled:
            self._tracer.counter_add("cluster.dispatched", 1.0)
            self._tracer.histogram_record(
                "cluster.queue_wait_s", now - record.admitted_s
            )
            if now - record.admitted_s > 0.0:
                self._tracer.span(
                    job.label, record.admitted_s, now - record.admitted_s,
                    cat="cluster", pid="cluster", tid="queue",
                )
            self._tracer.span(
                job.label, now, transfer + segment_service,
                cat="cluster", pid="cluster", tid=f"chip{chip.chip_id}",
                app=job.app, transfer_s=transfer,
                service_s=segment_service,
            )

    def _complete(self, execution: _Execution, when: float) -> None:
        record = execution.record
        chip_id = execution.chip.chip_id
        del self.busy[chip_id]
        self._release_chip(execution.chip)
        record.completed_s = when
        # Residency is granted when the transfer has actually landed --
        # which, on the completion path, it always has.
        self.resident[chip_id].add(execution.job.dataset_key)
        self.progress.pop(execution.job.job_id, None)
        if record.preemptions:
            self._append_segment(record, execution, 1.0,
                                 execution.service_s, execution.energy_j,
                                 execution.transfer_s)
        if self._tracer.enabled:
            self._tracer.counter_add("cluster.completed", 1.0)
            self._tracer.histogram_record("cluster.latency_s", record.latency_s)
            self._tracer.histogram_record(
                "cluster.attempts", float(record.attempts)
            )
            if record.deadline_met is False:
                self._tracer.counter_add("cluster.deadline_misses", 1.0)

    def _preempt(self, victim: RunningJob, now: float) -> None:
        execution = self.busy.get(victim.chip.chip_id)
        if (
            execution is None
            or execution.token != victim.token
            or execution.cancelled
        ):
            return  # stale preemption against a finished execution
        execution.cancelled = True
        chip_id = execution.chip.chip_id
        del self.busy[chip_id]
        self._release_chip(execution.chip)
        record = execution.record
        if execution.transfer_s > 0.0 and now < execution.transfer_end_s:
            # Transfer cut short: the staged bytes are lost.  Keep the
            # time actually spent on the wire charged, uncharge the
            # remainder and the whole (never started) service segment.
            spent = now - execution.dispatched_s
            record.transfer_s -= execution.transfer_end_s - now
            record.wasted_transfer_s += spent
            record.service_s -= execution.service_s
            record.energy_j -= execution.energy_j
            self._append_segment(
                record, execution, execution.work_start, 0.0, 0.0, spent
            )
        else:
            # Transfer landed (grant residency) and the service ran for
            # a while: checkpoint the executed fraction, uncharge the
            # unfinished remainder exactly once.
            self.resident[chip_id].add(execution.job.dataset_key)
            executed = now - execution.transfer_end_s
            if execution.service_s > 0.0:
                executed_frac = executed / execution.service_s
            else:
                executed_frac = 1.0
            unfinished = execution.service_s - executed
            record.service_s -= unfinished
            record.energy_j -= execution.energy_j * (1.0 - executed_frac)
            new_progress = (
                execution.work_start
                + (1.0 - execution.work_start) * executed_frac
            )
            self.progress[execution.job.job_id] = new_progress
            self._append_segment(
                record, execution, new_progress, executed,
                execution.energy_j * executed_frac, execution.transfer_s,
            )
        record.preemptions += 1
        record.status = PREEMPTED
        self.queue.append(execution.job)
        if self._tracer.enabled:
            self._tracer.counter_add("cluster.preemptions", 1.0)
            self._tracer.span(
                execution.job.label, execution.dispatched_s,
                now - execution.dispatched_s, cat="cluster",
                pid="cluster", tid=f"chip{chip_id}", preempted=True,
            )

    @staticmethod
    def _append_segment(
        record: JobRecord,
        execution: _Execution,
        progress_to: float,
        service_s: float,
        energy_j: float,
        transfer_s: float,
    ) -> None:
        """Audit one executed segment on a preempted job's record.

        Segments partition the job's work fraction in [0, 1]; their
        service/energy sums equal the record's totals -- the
        no-double-counting invariant the property tests pin.
        """
        record.extra.setdefault("segments", []).append(
            {
                "chip_id": execution.chip.chip_id,
                "from": execution.work_start,
                "to": progress_to,
                "service_s": service_s,
                "energy_j": energy_j,
                "transfer_s": transfer_s,
                "speed": execution.speed_label,
            }
        )

    # ------------------------------------------------------------------ #
    # the scheduling round
    # ------------------------------------------------------------------ #

    def _take_chip(self, chip: ChipSpec) -> None:
        self._free_ids.remove(chip.chip_id)
        self.free_chips.remove(chip)  # sorted list, O(C) with tiny C

    def _release_chip(self, chip: ChipSpec) -> None:
        self._free_ids.add(chip.chip_id)
        insort(self.free_chips, chip, key=lambda c: c.chip_id)

    def _round(self, now: float) -> bool:
        produced = False
        while self.queue and self.free_chips:
            pick = self.policy.select(now, self.queue, self.free_chips, self)
            if pick is None:
                break
            job, chip = pick
            queued = any(queued is job for queued in self.queue)
            if not queued or chip.chip_id not in self._free_ids:
                raise RuntimeError(
                    f"policy {self.policy.name!r} selected an invalid "
                    f"pair: {job.label} -> {chip.label}"
                )
            # Remove the picked job *by identity* (frozen dataclasses
            # compare by field, and queues may hold equal duplicates).
            for index, queued_job in enumerate(self.queue):
                if queued_job is job:
                    del self.queue[index]
                    break
            self._take_chip(chip)
            self.events.schedule(now, DISPATCH, payload=(job, chip))
            produced = True
        if self.queue and not self.free_chips and self.busy:
            victim = self._consider_preemption(now)
            if victim is not None:
                self.events.schedule(
                    now, PREEMPT, tie=victim.chip.chip_id, payload=victim
                )
                produced = True
        return produced

    def _consider_preemption(self, now: float) -> Optional[RunningJob]:
        running = [
            RunningJob(
                job=execution.job,
                chip=execution.chip,
                dispatched_s=execution.dispatched_s,
                transfer_end_s=execution.transfer_end_s,
                completion_s=execution.completion_s,
                preemptable=execution.dispatched_s < now,
                token=execution.token,
            )
            for _, execution in sorted(self.busy.items())
        ]
        victim = self.policy.select_preemption(now, self.queue, running, self)
        if victim is None:
            return None
        execution = self.busy.get(victim.chip.chip_id)
        if (
            execution is None
            or execution.token != victim.token
            or not victim.preemptable
        ):
            raise RuntimeError(
                f"policy {self.policy.name!r} selected an invalid "
                f"preemption victim on chip {victim.chip.chip_id}"
            )
        return victim
