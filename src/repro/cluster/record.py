"""Cluster run records: canonical, replayable artifacts of one run.

A :class:`ClusterRunResult` captures everything a cluster run did -- the
arrival trace it served, the policy and fleet it ran on, one
:class:`~repro.cluster.jobs.JobRecord` per job, and the fleet-level
:class:`~repro.cluster.metrics.SloReport` -- as canonical JSON.

Replay contract: the **replay digest** (sha256 over the canonical JSON
of trace + policy + fleet + queue bound + records + report) is a pure
function of the simulated schedule.  Re-running a record's trace through
the same policy on the same fleet must reproduce that digest byte for
byte; the cold/warm split of the study resolutions (``study_stats``) is
deliberately excluded, because a warm replay resolves every per-job
simulation from the StudyCache without changing a single metric.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.cluster.arrivals import ArrivalTrace
from repro.cluster.fleet import Fleet
from repro.cluster.jobs import JobRecord
from repro.cluster.metrics import SloReport
from repro.utils.jsonutil import canonical_json, to_builtin

#: Bump when the run-record JSON schema changes.
RECORD_SCHEMA_VERSION = 1


@dataclass
class ClusterRunResult:
    """The complete audited outcome of one cluster run."""

    trace: ArrivalTrace
    policy: str
    fleet: Fleet
    max_queue_depth: int
    records: List[JobRecord]
    report: SloReport
    #: CostModel counters (computed / cache_hits / memo_hits /
    #: unique_specs, plus batches / prefetched when the parallel
    #: cost-model front ran).  Excluded from the replay digest: a warm
    #: replay differs here and nowhere else.
    study_stats: Dict[str, int] = field(default_factory=dict)
    #: The source discipline the run was served under
    #: (:meth:`~repro.cluster.arrivals.Source.to_dict`), or ``None``
    #: for the legacy open loop.  Part of the replay digest -- a
    #: closed-loop run replays under the same backoff parameters.
    source: Optional[Dict] = None

    # ------------------------------------------------------------------ #

    def payload_dict(self) -> Dict:
        """The replay-deterministic portion of the record."""
        out = {
            "schema_version": RECORD_SCHEMA_VERSION,
            "trace": self.trace.to_dict(),
            "policy": self.policy,
            "fleet": self.fleet.to_dict(),
            "max_queue_depth": int(self.max_queue_depth),
            "records": [record.to_dict() for record in self.records],
            "report": self.report.to_dict(),
        }
        # Open-loop runs omit the key so pre-engine records (and their
        # digests) remain byte-identical.
        if self.source is not None:
            out["source"] = to_builtin(dict(self.source))
        return out

    def payload_json(self) -> str:
        """Canonical JSON of the replay-deterministic portion."""
        return canonical_json(self.payload_dict())

    @property
    def replay_digest(self) -> str:
        """sha256 of :meth:`payload_json` -- equal across replays."""
        return hashlib.sha256(self.payload_json().encode("utf-8")).hexdigest()

    def to_dict(self) -> Dict:
        out = self.payload_dict()
        out["replay_digest"] = self.replay_digest
        out["study_stats"] = to_builtin(dict(self.study_stats))
        return out

    @classmethod
    def from_dict(cls, data: Dict) -> "ClusterRunResult":
        data = to_builtin(dict(data))
        version = data.get("schema_version", RECORD_SCHEMA_VERSION)
        if version != RECORD_SCHEMA_VERSION:
            raise ValueError(
                f"record schema version {version} not supported "
                f"(expected {RECORD_SCHEMA_VERSION})"
            )
        return cls(
            trace=ArrivalTrace.from_dict(data["trace"]),
            policy=data["policy"],
            fleet=Fleet.from_dict(data["fleet"]),
            max_queue_depth=int(data["max_queue_depth"]),
            records=[JobRecord.from_dict(r) for r in data["records"]],
            report=SloReport.from_dict(data["report"]),
            study_stats=dict(data.get("study_stats", {})),
            source=data.get("source"),
        )

    def save(self, path: Union[str, Path]) -> None:
        with open(path, "w") as handle:
            handle.write(canonical_json(self.to_dict()) + "\n")

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ClusterRunResult":
        with open(path) as handle:
            return cls.from_dict(json.load(handle))


def replay(
    record: ClusterRunResult,
    cache=None,
    prefetch_jobs: Optional[int] = None,
) -> ClusterRunResult:
    """Re-run a recorded cluster run (same trace, policy, fleet, source).

    With a warm *cache* the replay resolves every per-job simulation from
    the StudyCache -- ``result.study_stats["computed"] == 0`` -- and must
    reproduce the record's :attr:`~ClusterRunResult.replay_digest`.
    A closed-loop record replays under its recorded source parameters.
    *prefetch_jobs* routes the replay's study resolutions through the
    parallel cost-model front (the batch counters land in
    ``study_stats`` and never touch the digest).
    """
    from repro.cluster.arrivals import source_from_dict
    from repro.cluster.service import ClusterService

    service = ClusterService(
        record.fleet,
        policy=record.policy,
        cache=cache,
        max_queue_depth=record.max_queue_depth,
        prefetch_jobs=prefetch_jobs,
    )
    return service.run(source_from_dict(record.trace, record.source))


def verify_replay(
    record: ClusterRunResult, replayed: ClusterRunResult
) -> Optional[str]:
    """``None`` when *replayed* reproduces *record* byte for byte, else a
    one-line description of the first divergence."""
    if replayed.replay_digest == record.replay_digest:
        return None
    original = record.payload_dict()
    fresh = replayed.payload_dict()
    for key in original:
        if canonical_json(original[key]) != canonical_json(fresh.get(key)):
            return (
                f"replay diverged at {key!r}: digest "
                f"{record.replay_digest[:12]} != {replayed.replay_digest[:12]}"
            )
    return "replay diverged (unlocated)"
