"""Multi-job cluster service over fleets of simulated VFI chips.

The production-shaped layer above the per-chip pipeline: seeded arrival
traces of MapReduce jobs behind open- or closed-loop sources, pluggable
cluster-level scheduling policies (including preemptive EDF and DVFS
speed scaling), admission control with bounded-queue backpressure and
seeded retry backoff, StudyCache-deduped per-job simulation with a
parallel batch front, SLO metrics and byte-identical record/replay.

Layering::

    repro.cluster.service   stable facade (one run -> one record)
      repro.cluster.engine    event application + scheduling rounds
        repro.cluster.events    typed deterministic event heap
      repro.cluster.policies  SCHEDULERS registry (fifo/.../edf_preempt)
      repro.cluster.costmodel StudySpec resolution (memo -> cache -> sim)
      repro.cluster.arrivals  seeded ArrivalTrace + Source disciplines
      repro.cluster.fleet     ChipSpec / Fleet (faults/tech/caps per chip)
      repro.cluster.metrics   per-job + fleet SLO aggregation
      repro.cluster.record    canonical-JSON run records + replay
"""

from repro.cluster.arrivals import (
    ArrivalTrace,
    ClosedLoopSource,
    OpenLoopSource,
    Source,
    WORKLOADS,
    generate_trace,
    make_source,
    preset_trace,
    source_from_dict,
)
from repro.cluster.costmodel import (
    CostModel,
    JobEstimate,
    SpeedStep,
    scale_estimate,
)
from repro.cluster.engine import ClusterEngine
from repro.cluster.events import Event, EventEngine
from repro.cluster.fleet import ChipSpec, Fleet, fleet_for, hetero_fleet
from repro.cluster.jobs import (
    COMPLETED,
    PREEMPTED,
    REJECTED,
    RETRYING,
    TERMINAL_STATUSES,
    ClusterJob,
    JobRecord,
)
from repro.cluster.metrics import SloReport, slo_report
from repro.cluster.policies import (
    SCHEDULERS,
    ClusterScheduler,
    RunningJob,
    create_scheduler,
    register_scheduler,
    scheduler_names,
)
from repro.cluster.record import ClusterRunResult, replay, verify_replay
from repro.cluster.service import ClusterService, run_workload

__all__ = [
    "ArrivalTrace",
    "Source",
    "OpenLoopSource",
    "ClosedLoopSource",
    "make_source",
    "source_from_dict",
    "WORKLOADS",
    "generate_trace",
    "preset_trace",
    "CostModel",
    "JobEstimate",
    "SpeedStep",
    "scale_estimate",
    "ClusterEngine",
    "Event",
    "EventEngine",
    "ChipSpec",
    "Fleet",
    "fleet_for",
    "hetero_fleet",
    "COMPLETED",
    "REJECTED",
    "RETRYING",
    "PREEMPTED",
    "TERMINAL_STATUSES",
    "ClusterJob",
    "JobRecord",
    "SloReport",
    "slo_report",
    "SCHEDULERS",
    "ClusterScheduler",
    "RunningJob",
    "create_scheduler",
    "register_scheduler",
    "scheduler_names",
    "ClusterRunResult",
    "replay",
    "verify_replay",
    "ClusterService",
    "run_workload",
]
