"""Multi-job cluster service over fleets of simulated VFI chips.

The production-shaped layer above the per-chip pipeline: seeded arrival
traces of MapReduce jobs, pluggable cluster-level scheduling policies,
admission control with bounded-queue backpressure, StudyCache-deduped
per-job simulation, SLO metrics and byte-identical record/replay.

Layering::

    repro.cluster.service   discrete-event loop (admission -> dispatch)
      repro.cluster.policies  SCHEDULERS registry (fifo/priority/edf/...)
      repro.cluster.costmodel StudySpec resolution (memo -> cache -> sim)
      repro.cluster.arrivals  seeded ArrivalTrace + preset WORKLOADS
      repro.cluster.fleet     ChipSpec / Fleet (fault plans per chip)
      repro.cluster.metrics   per-job + fleet SLO aggregation
      repro.cluster.record    canonical-JSON run records + replay
"""

from repro.cluster.arrivals import (
    ArrivalTrace,
    WORKLOADS,
    generate_trace,
    preset_trace,
)
from repro.cluster.costmodel import CostModel, JobEstimate
from repro.cluster.fleet import ChipSpec, Fleet, fleet_for, hetero_fleet
from repro.cluster.jobs import COMPLETED, REJECTED, ClusterJob, JobRecord
from repro.cluster.metrics import SloReport, slo_report
from repro.cluster.policies import (
    SCHEDULERS,
    ClusterScheduler,
    create_scheduler,
    register_scheduler,
    scheduler_names,
)
from repro.cluster.record import ClusterRunResult, replay, verify_replay
from repro.cluster.service import ClusterService, run_workload

__all__ = [
    "ArrivalTrace",
    "WORKLOADS",
    "generate_trace",
    "preset_trace",
    "CostModel",
    "JobEstimate",
    "ChipSpec",
    "Fleet",
    "fleet_for",
    "hetero_fleet",
    "COMPLETED",
    "REJECTED",
    "ClusterJob",
    "JobRecord",
    "SloReport",
    "slo_report",
    "SCHEDULERS",
    "ClusterScheduler",
    "create_scheduler",
    "register_scheduler",
    "scheduler_names",
    "ClusterRunResult",
    "replay",
    "verify_replay",
    "ClusterService",
    "run_workload",
]
