"""Thread-to-core mapping strategies (paper Sec. 6)."""

from repro.mapping.thread_mapping import (
    ThreadMapping,
    communication_aware_mapping,
    identity_mapping,
    wireless_centric_mapping,
)

__all__ = [
    "ThreadMapping",
    "identity_mapping",
    "communication_aware_mapping",
    "wireless_centric_mapping",
]
