"""Thread-to-core mapping.

A mapping assigns each logical worker (thread) of the MapReduce runtime to
one physical core/switch node.  The VFI clustering constrains it: cluster
*j*'s workers must land on island *j*'s quadrant so the island's V/F
matches the workers' utilization class.  Within that constraint the paper
uses two strategies (Sec. 6):

1. **communication-aware** (min-hop-count methodology): place highly
   communicating workers physically close -- simulated annealing over
   within-island permutations minimizing traffic-weighted grid distance;
2. **wireless-centric** ("logically near, physically far", max-wireless-
   utilization methodology): within each island rank nodes by distance to
   the island's WIs and give the nodes nearest a WI to the workers with
   the most *inter-island* traffic, funneling long-range flits onto the
   energy-efficient wireless links.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.noc.topology import GridGeometry
from repro.utils.rng import SeedLike, derive_rng
from repro.vfi.islands import VfiLayout


@dataclass(frozen=True)
class ThreadMapping:
    """Bijection between workers and nodes."""

    worker_to_node: Tuple[int, ...]

    def __post_init__(self) -> None:
        nodes = set(self.worker_to_node)
        if len(nodes) != len(self.worker_to_node):
            raise ValueError("mapping is not a bijection (repeated node)")

    @property
    def num_workers(self) -> int:
        return len(self.worker_to_node)

    def node_of(self, worker: int) -> int:
        return self.worker_to_node[worker]

    def node_to_worker(self) -> Dict[int, int]:
        return {node: worker for worker, node in enumerate(self.worker_to_node)}

    def map_traffic(self, worker_traffic: np.ndarray) -> np.ndarray:
        """Re-index a worker x worker traffic matrix to node x node."""
        n = self.num_workers
        if worker_traffic.shape != (n, n):
            raise ValueError(
                f"traffic {worker_traffic.shape} does not match {n} workers"
            )
        size = max(self.worker_to_node) + 1
        node_traffic = np.zeros((size, size))
        nodes = np.asarray(self.worker_to_node)
        node_traffic[np.ix_(nodes, nodes)] = worker_traffic
        return node_traffic


def identity_mapping(num_workers: int) -> ThreadMapping:
    """Worker *i* on node *i* (the NVFI baseline's trivial placement)."""
    if num_workers <= 0:
        raise ValueError(f"num_workers must be > 0, got {num_workers}")
    return ThreadMapping(tuple(range(num_workers)))


def _grid_distance_matrix(geometry: GridGeometry) -> np.ndarray:
    # All-pairs Manhattan distance in one broadcast: the O(n^2) Python
    # loop dominated mapping setup on 128/256-core dies.
    nodes = np.arange(geometry.num_nodes)
    columns = nodes % geometry.columns
    rows = nodes // geometry.columns
    return (
        np.abs(columns[:, None] - columns[None, :])
        + np.abs(rows[:, None] - rows[None, :])
    ).astype(float)


def _initial_cluster_mapping(
    worker_clusters: Sequence[int], layout: VfiLayout
) -> List[int]:
    """Deterministic seed: cluster j's workers fill island j's nodes in
    index order."""
    members = layout.members()
    cursors = {cid: 0 for cid in members}
    mapping = []
    for worker, cid in enumerate(worker_clusters):
        if cid not in members:
            raise ValueError(f"worker {worker} in unknown cluster {cid}")
        nodes = members[cid]
        if cursors[cid] >= len(nodes):
            raise ValueError(
                f"cluster {cid} has more workers than island nodes"
            )
        mapping.append(nodes[cursors[cid]])
        cursors[cid] += 1
    return mapping


def mapping_cost(
    mapping: Sequence[int], traffic: np.ndarray, distance: np.ndarray
) -> float:
    """Traffic-weighted total grid distance of a mapping."""
    nodes = np.asarray(mapping)
    return float((traffic * distance[np.ix_(nodes, nodes)]).sum())


def communication_aware_mapping(
    worker_clusters: Sequence[int],
    layout: VfiLayout,
    traffic: np.ndarray,
    iterations: int = 2000,
    seed: SeedLike = None,
) -> ThreadMapping:
    """SA mapping minimizing traffic-weighted distance within islands.

    Moves swap the nodes of two workers in the *same* cluster, so the
    cluster-to-island constraint holds by construction.
    """
    num_workers = len(worker_clusters)
    if traffic.shape != (num_workers, num_workers):
        raise ValueError("traffic shape does not match workers")
    rng = derive_rng(seed)
    distance = _grid_distance_matrix(layout.geometry)
    mapping = _initial_cluster_mapping(worker_clusters, layout)
    current_cost = mapping_cost(mapping, traffic, distance)
    best, best_cost = list(mapping), current_cost
    temperature = max(0.05 * current_cost, 1e-9)
    clusters = np.asarray(worker_clusters)
    for _ in range(iterations):
        a, b = int(rng.integers(num_workers)), int(rng.integers(num_workers))
        if a == b or clusters[a] != clusters[b]:
            continue
        mapping[a], mapping[b] = mapping[b], mapping[a]
        candidate_cost = mapping_cost(mapping, traffic, distance)
        delta = candidate_cost - current_cost
        if delta <= 0 or rng.random() < math.exp(-delta / max(temperature, 1e-15)):
            current_cost = candidate_cost
            if current_cost < best_cost:
                best, best_cost = list(mapping), current_cost
        else:
            mapping[a], mapping[b] = mapping[b], mapping[a]  # revert
        temperature *= 0.998
    return ThreadMapping(tuple(best))


def wireless_centric_mapping(
    worker_clusters: Sequence[int],
    layout: VfiLayout,
    traffic: np.ndarray,
    wi_nodes: Sequence[int],
    seed: SeedLike = None,
) -> ThreadMapping:
    """"Logically near, physically far" mapping toward island WIs.

    Within each island, nodes are ranked by grid distance to the island's
    nearest WI; workers are ranked by their inter-island traffic volume;
    rank *k* worker takes rank *k* node.  Heavy long-range communicators
    therefore sit next to a wireless port.
    """
    num_workers = len(worker_clusters)
    if traffic.shape != (num_workers, num_workers):
        raise ValueError("traffic shape does not match workers")
    if not wi_nodes:
        raise ValueError("wi_nodes is empty")
    geometry = layout.geometry
    clusters = np.asarray(worker_clusters)
    volume = traffic + traffic.T
    inter_mask = clusters[:, None] != clusters[None, :]
    inter_volume = (volume * inter_mask).sum(axis=1)

    mapping = [-1] * num_workers
    for cid, nodes in layout.members().items():
        island_wis = [n for n in wi_nodes if layout.cluster_of(n) == cid]
        anchors = island_wis or list(wi_nodes)
        ranked_nodes = sorted(
            nodes,
            key=lambda node: (
                min(geometry.manhattan_hops(node, wi) for wi in anchors),
                node,
            ),
        )
        island_workers = [w for w in range(num_workers) if clusters[w] == cid]
        if len(island_workers) > len(ranked_nodes):
            raise ValueError(f"cluster {cid} has more workers than nodes")
        ranked_workers = sorted(
            island_workers, key=lambda w: (-inter_volume[w], w)
        )
        for worker, node in zip(ranked_workers, ranked_nodes):
            mapping[worker] = node
    return ThreadMapping(tuple(mapping))
